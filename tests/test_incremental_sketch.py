"""Property-based tests for incremental MNC sketch maintenance.

The load-bearing property is *update-vs-rebuild equivalence*: after any
seeded sequence of appends, deletes, and block updates, the patched
sketch must be field-identical to ``MNCSketch.from_matrix`` on a
from-scratch rebuild of the mutated matrix. A dense boolean reference
implementation of the delta semantics keeps the oracle independent of
the slot machinery under test.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.estimate import estimate_product_nnz
from repro.core.incremental import (
    AppendCols,
    AppendRows,
    BlockUpdate,
    DeleteCols,
    DeleteRows,
    IncrementalSketch,
    apply_update,
    apply_updates,
    delta_from_payload,
    delta_to_payload,
    random_deltas,
)
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError, SketchError
from repro.matrix.random import random_sparse
from repro.verify.generators import all_generators, generate_case


# ----------------------------------------------------------------------
# Reference semantics over dense boolean matrices
# ----------------------------------------------------------------------

def dense_apply(dense: np.ndarray, delta) -> np.ndarray:
    """Apply *delta* to a dense 0/1 matrix (the independent oracle)."""
    m, n = dense.shape
    if isinstance(delta, AppendRows):
        rows = np.zeros((len(delta.patterns), n), dtype=bool)
        for i, pattern in enumerate(delta.patterns):
            rows[i, pattern] = True
        return np.vstack([dense, rows]) if len(delta.patterns) else dense
    if isinstance(delta, AppendCols):
        cols = np.zeros((m, len(delta.patterns)), dtype=bool)
        for i, pattern in enumerate(delta.patterns):
            cols[pattern, i] = True
        return np.hstack([dense, cols]) if len(delta.patterns) else dense
    if isinstance(delta, DeleteRows):
        return np.delete(dense, delta.positions, axis=0)
    if isinstance(delta, DeleteCols):
        return np.delete(dense, delta.positions, axis=1)
    bh, bw = delta.pattern.shape
    out = dense.copy()
    out[delta.row_start:delta.row_start + bh,
        delta.col_start:delta.col_start + bw] = delta.pattern
    return out


def rebuild_sketch(dense: np.ndarray) -> MNCSketch:
    return MNCSketch.from_matrix(sp.csr_array(dense.astype(float)))


def assert_sketch_fields_equal(actual: MNCSketch, expected: MNCSketch) -> None:
    assert actual.shape == expected.shape
    np.testing.assert_array_equal(actual.hr, expected.hr)
    np.testing.assert_array_equal(actual.hc, expected.hc)
    for name in ("her", "hec"):
        lhs = getattr(actual, name)
        rhs = getattr(expected, name)
        assert (lhs is None) == (rhs is None), (
            f"{name} presence differs: patched={lhs is not None} "
            f"rebuilt={rhs is not None}"
        )
        if lhs is not None:
            np.testing.assert_array_equal(lhs, rhs, err_msg=name)
    assert actual.fully_diagonal == expected.fully_diagonal
    assert actual.exact == expected.exact


def run_equivalence(dense: np.ndarray, deltas, check_every: int = 1) -> None:
    """Drive incremental and dense states in parallel, comparing sketches."""
    incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
    for step, delta in enumerate(deltas):
        apply_update(incr, delta)
        dense = dense_apply(dense, delta)
        assert incr.shape == dense.shape
        assert incr.total_nnz == int(np.count_nonzero(dense))
        if step % check_every == 0:
            assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))
    assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))
    structure = incr.to_matrix().toarray() != 0
    np.testing.assert_array_equal(structure, dense)


def seeded_dense(seed: int, m: int = 10, n: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((m, n)) < rng.random()


# ----------------------------------------------------------------------
# Delta construction and wire payloads
# ----------------------------------------------------------------------

class TestDeltaNormalization:
    def test_delete_positions_sorted_unique(self):
        delta = DeleteRows([3, 1, 3, 0])
        np.testing.assert_array_equal(delta.positions, [0, 1, 3])

    def test_append_patterns_sorted_unique(self):
        delta = AppendRows([[4, 2, 2], [0]])
        np.testing.assert_array_equal(delta.patterns[0], [2, 4])
        np.testing.assert_array_equal(delta.patterns[1], [0])

    def test_negative_position_rejected(self):
        with pytest.raises(SketchError):
            DeleteCols([-1])
        with pytest.raises(SketchError):
            AppendCols([[0, -2]])

    def test_block_pattern_coerced_to_bool(self):
        delta = BlockUpdate(0, 0, [[2, 0], [0, 5]])
        assert delta.pattern.dtype == bool
        np.testing.assert_array_equal(delta.pattern, [[True, False],
                                                      [False, True]])

    def test_block_pattern_must_be_2d(self):
        with pytest.raises(SketchError):
            BlockUpdate(0, 0, [1, 0, 1])

    def test_block_origin_must_be_non_negative(self):
        with pytest.raises(SketchError):
            BlockUpdate(-1, 0, [[1]])


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("delta", [
        AppendRows([[0, 2], []]),
        AppendCols([[1]]),
        DeleteRows([0, 3]),
        DeleteCols([2]),
        BlockUpdate(1, 2, [[1, 0], [1, 1]]),
    ], ids=["append_rows", "append_cols", "delete_rows", "delete_cols",
            "block"])
    def test_round_trip(self, delta):
        clone = delta_from_payload(delta_to_payload(delta))
        assert type(clone) is type(delta)
        np.testing.assert_array_equal(
            clone.pattern if isinstance(delta, BlockUpdate)
            else getattr(clone, "positions", None)
            if hasattr(clone, "positions")
            else np.concatenate([np.asarray(p) for p in clone.patterns]
                                or [np.empty(0)]),
            delta.pattern if isinstance(delta, BlockUpdate)
            else getattr(delta, "positions", None)
            if hasattr(delta, "positions")
            else np.concatenate([np.asarray(p) for p in delta.patterns]
                                or [np.empty(0)]),
        )

    def test_block_round_trip_preserves_origin(self):
        clone = delta_from_payload(
            delta_to_payload(BlockUpdate(3, 4, [[1]]))
        )
        assert (clone.row_start, clone.col_start) == (3, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SketchError):
            delta_from_payload({"kind": "rename_rows"})

    def test_non_dict_rejected(self):
        with pytest.raises(SketchError):
            delta_from_payload(["append_rows"])

    def test_missing_field_rejected(self):
        with pytest.raises(SketchError):
            delta_from_payload({"kind": "append_rows"})

    def test_malformed_block_rejected(self):
        with pytest.raises(SketchError):
            delta_from_payload({"kind": "block", "row_start": 0,
                                "col_start": 0, "pattern": "xx"})

    def test_payload_is_json_safe(self):
        import json
        payload = delta_to_payload(BlockUpdate(0, 1, [[1, 0]]))
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# Update-vs-rebuild equivalence
# ----------------------------------------------------------------------

class TestUpdateVsRebuild:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_sequences(self, seed):
        dense = seeded_dense(seed)
        rng = np.random.default_rng(1000 + seed)
        run_equivalence(dense, random_deltas(rng, dense.shape, 15))

    @pytest.mark.parametrize("generator", all_generators())
    @pytest.mark.parametrize("index", [0, 3, 7])
    def test_generator_zoo_leaves(self, generator, index):
        """Every leaf matrix of the fuzz generator zoo survives churn."""
        case = generate_case(generator, seed=42, index=index)
        rng = np.random.default_rng([42, index])
        for leaf in case.root.leaves()[:2]:
            dense = (leaf.matrix.toarray() != 0)
            run_equivalence(
                dense, random_deltas(rng, dense.shape, 8), check_every=2
            )

    def test_each_delta_kind_alone(self):
        dense = seeded_dense(5, 8, 8)
        for deltas in (
            [AppendRows([[0, 3], [1]])],
            [AppendCols([[2, 5]])],
            [DeleteRows([0, 4])],
            [DeleteCols([1, 6])],
            [BlockUpdate(2, 2, np.eye(3))],
        ):
            run_equivalence(dense.copy(), deltas)

    def test_interleaved_long_sequence(self):
        dense = seeded_dense(9, 6, 6)
        rng = np.random.default_rng(77)
        run_equivalence(dense, random_deltas(rng, dense.shape, 60),
                        check_every=5)

    def test_sparse_and_dense_extremes(self):
        rng = np.random.default_rng(3)
        for density in (0.0, 0.02, 0.5, 1.0):
            dense = rng.random((9, 7)) < density
            run_equivalence(
                dense, random_deltas(rng, dense.shape, 10), check_every=3
            )

    def test_single_row_and_column_matrices(self):
        rng = np.random.default_rng(8)
        for shape in ((1, 12), (12, 1), (1, 1)):
            dense = rng.random(shape) < 0.4
            run_equivalence(dense, random_deltas(rng, shape, 10),
                            check_every=2)


class TestEmptyDeltaNoOp:
    def test_empty_append_rows(self):
        incr = IncrementalSketch(seeded_dense(0).astype(float))
        before = incr.sketch()
        apply_update(incr, AppendRows([]))
        assert_sketch_fields_equal(incr.sketch(), before)

    def test_empty_delete(self):
        incr = IncrementalSketch(seeded_dense(1).astype(float))
        before = incr.sketch()
        apply_update(incr, DeleteRows([]))
        apply_update(incr, DeleteCols([]))
        assert_sketch_fields_equal(incr.sketch(), before)
        assert not incr.extensions_stale

    def test_zero_area_block(self):
        incr = IncrementalSketch(seeded_dense(2).astype(float))
        before = incr.sketch()
        apply_update(incr, BlockUpdate(0, 0, np.zeros((0, 3))))
        assert_sketch_fields_equal(incr.sketch(), before)

    def test_identity_block_rewrite(self):
        """Writing back the existing block structure changes nothing."""
        dense = seeded_dense(4)
        incr = IncrementalSketch(dense.astype(float))
        before = incr.sketch()
        apply_update(incr, BlockUpdate(1, 1, dense[1:4, 1:5]))
        assert not incr.extensions_stale
        assert_sketch_fields_equal(incr.sketch(), before)


class TestDeleteThenReappend:
    def test_row_round_trip(self):
        dense = seeded_dense(11, 8, 6)
        incr = IncrementalSketch(dense.astype(float))
        original = incr.sketch()
        tail = [np.flatnonzero(dense[r]) for r in (6, 7)]
        apply_update(incr, DeleteRows([6, 7]))
        apply_update(incr, AppendRows(tail))
        assert_sketch_fields_equal(incr.sketch(), original)
        np.testing.assert_array_equal(incr.to_matrix().toarray() != 0, dense)

    def test_col_round_trip(self):
        dense = seeded_dense(12, 6, 8)
        incr = IncrementalSketch(dense.astype(float))
        original = incr.sketch()
        tail = [np.flatnonzero(dense[:, c]) for c in (6, 7)]
        apply_update(incr, DeleteCols([6, 7]))
        apply_update(incr, AppendCols(tail))
        assert_sketch_fields_equal(incr.sketch(), original)

    def test_delete_all_then_regrow(self):
        dense = seeded_dense(13, 5, 4)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, DeleteRows(range(5)))
        assert incr.shape == (0, 4)
        apply_update(incr, AppendRows([np.flatnonzero(r) for r in dense]))
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))


class TestZeroDimEdgeCases:
    def test_zero_by_zero(self):
        incr = IncrementalSketch(sp.csr_array((0, 0)))
        sketch = incr.sketch()
        assert sketch.shape == (0, 0)
        assert sketch.fully_diagonal  # matches from_matrix on 0x0
        assert_sketch_fields_equal(
            sketch, MNCSketch.from_matrix(sp.csr_array((0, 0)))
        )

    def test_grow_from_empty(self):
        incr = IncrementalSketch(sp.csr_array((0, 0)))
        apply_update(incr, AppendCols([[], [], []]))
        assert incr.shape == (0, 3)
        apply_update(incr, AppendRows([[0, 2], [1]]))
        dense = np.array([[1, 0, 1], [0, 1, 0]]) != 0
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))

    def test_zero_rows_matrix_churn(self):
        incr = IncrementalSketch(sp.csr_array((0, 4)))
        apply_update(incr, DeleteCols([0, 3]))
        assert incr.shape == (0, 2)
        apply_update(incr, AppendRows([[0, 1]]))
        assert incr.total_nnz == 2
        assert_sketch_fields_equal(
            incr.sketch(), rebuild_sketch(np.ones((1, 2), dtype=bool))
        )

    def test_zero_cols_matrix_churn(self):
        incr = IncrementalSketch(sp.csr_array((3, 0)))
        apply_update(incr, DeleteRows([1]))
        apply_update(incr, AppendCols([[0, 1]]))
        assert incr.shape == (2, 1)
        assert incr.total_nnz == 2

    def test_random_churn_from_zero_dims(self):
        for seed, shape in ((21, (0, 5)), (22, (5, 0)), (23, (0, 0))):
            rng = np.random.default_rng(seed)
            dense = np.zeros(shape, dtype=bool)
            run_equivalence(dense, random_deltas(rng, shape, 14),
                            check_every=3)


class TestBlockUpdates:
    def test_clear_block(self):
        dense = np.ones((6, 6), dtype=bool)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, BlockUpdate(1, 1, np.zeros((3, 3))))
        expected = dense.copy()
        expected[1:4, 1:4] = False
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(expected))

    def test_fill_block(self):
        dense = np.zeros((5, 5), dtype=bool)
        incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
        apply_update(incr, BlockUpdate(0, 0, np.ones((5, 5))))
        assert incr.total_nnz == 25
        assert_sketch_fields_equal(
            incr.sketch(), rebuild_sketch(np.ones((5, 5), dtype=bool))
        )

    def test_full_matrix_replace(self):
        dense = seeded_dense(31, 7, 7)
        target = seeded_dense(32, 7, 7)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, BlockUpdate(0, 0, target))
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(target))

    def test_block_after_deletes_uses_positions(self):
        """Block coordinates are positions, not original indices."""
        dense = seeded_dense(33, 8, 8)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, DeleteRows([0]))
        apply_update(incr, DeleteCols([2]))
        shifted = np.delete(np.delete(dense, 0, axis=0), 2, axis=1)
        pattern = np.eye(2, dtype=bool)
        apply_update(incr, BlockUpdate(3, 3, pattern))
        shifted[3:5, 3:5] = pattern
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(shifted))


class TestShapeValidation:
    def test_append_row_column_out_of_range(self):
        incr = IncrementalSketch(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            apply_update(incr, AppendRows([[3]]))

    def test_append_col_row_out_of_range(self):
        incr = IncrementalSketch(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            apply_update(incr, AppendCols([[2]]))

    def test_delete_out_of_range(self):
        incr = IncrementalSketch(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            apply_update(incr, DeleteRows([2]))
        with pytest.raises(ShapeError):
            apply_update(incr, DeleteCols([5]))

    def test_block_exceeds_shape(self):
        incr = IncrementalSketch(np.ones((3, 3)))
        with pytest.raises(ShapeError):
            apply_update(incr, BlockUpdate(2, 0, np.ones((2, 2))))

    def test_apply_update_rejects_plain_sketch(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        with pytest.raises(SketchError):
            apply_update(sketch, DeleteRows([0]))

    def test_failed_delta_leaves_state_usable(self):
        dense = seeded_dense(41)
        incr = IncrementalSketch(dense.astype(float))
        with pytest.raises(ShapeError):
            apply_update(incr, DeleteRows([99]))
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))


class TestPeek:
    def test_peek_is_sketch_when_clean(self):
        incr = IncrementalSketch(seeded_dense(51).astype(float))
        exact = incr.sketch()
        assert incr.peek() is exact

    def test_peek_degrades_when_stale(self):
        dense = seeded_dense(52)
        incr = IncrementalSketch(dense.astype(float))
        incr.sketch()
        # Appending a dense-ish row crosses hc boundaries -> stale.
        apply_update(incr, AppendRows([np.arange(dense.shape[1])]))
        assert incr.extensions_stale
        peeked = incr.peek()
        assert peeked.exact is False
        assert peeked.her is None and peeked.hec is None

    def test_peek_histograms_still_exact(self):
        dense = seeded_dense(53)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, AppendRows([np.arange(dense.shape[1])]))
        updated = np.vstack([dense, np.ones((1, dense.shape[1]), bool)])
        rebuilt = rebuild_sketch(updated)
        peeked = incr.peek()
        np.testing.assert_array_equal(peeked.hr, rebuilt.hr)
        np.testing.assert_array_equal(peeked.hc, rebuilt.hc)

    def test_sketch_after_peek_repairs(self):
        dense = seeded_dense(54)
        incr = IncrementalSketch(dense.astype(float))
        apply_update(incr, AppendRows([np.arange(dense.shape[1])]))
        incr.peek()
        updated = np.vstack([dense, np.ones((1, dense.shape[1]), bool)])
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(updated))
        assert not incr.extensions_stale


class TestCompaction:
    def test_churn_triggers_compaction(self):
        rng = np.random.default_rng(61)
        dense = rng.random((10, 6)) < 0.3
        incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
        for _ in range(80):
            pos = np.sort(rng.choice(incr.shape[0], 2, replace=False))
            apply_update(incr, DeleteRows(pos))
            dense = np.delete(dense, pos, axis=0)
            patterns = [
                np.flatnonzero(rng.random(incr.shape[1]) < 0.3)
                for _ in range(2)
            ]
            apply_update(incr, AppendRows(patterns))
            block = np.zeros((2, incr.shape[1]), dtype=bool)
            for i, pattern in enumerate(patterns):
                block[i, pattern] = True
            dense = np.vstack([dense, block])
        assert incr.stats()["compactions"] >= 1
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))

    def test_compaction_preserves_pending_repairs(self):
        rng = np.random.default_rng(62)
        dense = rng.random((8, 8)) < 0.4
        incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
        deltas = random_deltas(rng, dense.shape, 40)
        for delta in deltas:
            apply_update(incr, delta)
            dense = dense_apply(dense, delta)
        incr._compact()
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))


class TestDiagonalTracking:
    def test_identity_stays_diagonal(self):
        incr = IncrementalSketch(np.eye(6))
        assert incr.sketch().fully_diagonal

    def test_delete_breaks_diagonal(self):
        incr = IncrementalSketch(np.eye(6))
        apply_update(incr, DeleteRows([2]))
        assert not incr.sketch().fully_diagonal

    def test_block_can_restore_diagonal(self):
        dense = np.eye(5)
        dense[1, 3] = 1.0
        incr = IncrementalSketch(dense)
        assert not incr.sketch().fully_diagonal
        row = np.zeros((1, 5))
        row[0, 1] = 1.0
        apply_update(incr, BlockUpdate(1, 0, row))
        assert incr.sketch().fully_diagonal

    def test_permutation_is_not_diagonal(self):
        dense = np.zeros((4, 4))
        dense[[0, 1, 2, 3], [1, 0, 3, 2]] = 1.0
        incr = IncrementalSketch(dense)
        expected = MNCSketch.from_matrix(dense)
        assert incr.sketch().fully_diagonal == expected.fully_diagonal


class TestDownstreamEstimates:
    def test_product_estimate_bit_identical(self):
        rng = np.random.default_rng(71)
        a = seeded_dense(72, 12, 9)
        b = random_sparse(9, 10, 0.2, seed=73)
        incr = IncrementalSketch(sp.csr_array(a.astype(float)))
        for delta in random_deltas(rng, a.shape, 6):
            # Keep the inner dimension fixed so the product stays valid.
            if isinstance(delta, (AppendCols, DeleteCols)):
                continue
            apply_update(incr, delta)
            a = dense_apply(a, delta)
        patched = estimate_product_nnz(
            incr.sketch(), MNCSketch.from_matrix(b)
        )
        rebuilt = estimate_product_nnz(
            rebuild_sketch(a), MNCSketch.from_matrix(b)
        )
        assert patched == rebuilt  # bit-identical, not approximately

    def test_apply_updates_convenience(self):
        dense = seeded_dense(74, 6, 6)
        incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
        deltas = [DeleteRows([0]), AppendRows([[1, 2]])]
        result = apply_updates(incr, deltas)
        assert result is incr
        for delta in deltas:
            dense = dense_apply(dense, delta)
        assert_sketch_fields_equal(incr.sketch(), rebuild_sketch(dense))


class TestRandomDeltas:
    def test_deterministic_for_same_seed(self):
        a = random_deltas(np.random.default_rng(5), (6, 6), 20)
        b = random_deltas(np.random.default_rng(5), (6, 6), 20)
        assert [type(x) for x in a] == [type(y) for y in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(
                *(d.pattern for d in (x, y)) if isinstance(x, BlockUpdate)
                else (d.positions for d in (x, y))
                if isinstance(x, (DeleteRows, DeleteCols))
                else (np.concatenate([*d.patterns, np.empty(0, np.int64)])
                      for d in (x, y))
            )

    def test_sequences_always_in_bounds(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            incr = IncrementalSketch(sp.csr_array((3, 3)))
            apply_updates(incr, random_deltas(rng, (3, 3), 30))

    def test_all_kinds_appear(self):
        kinds = set()
        for seed in range(20):
            rng = np.random.default_rng(seed)
            kinds.update(
                type(d).__name__ for d in random_deltas(rng, (8, 8), 10)
            )
        assert kinds == {"AppendRows", "AppendCols", "DeleteRows",
                         "DeleteCols", "BlockUpdate"}


class TestBookkeeping:
    def test_stats_shape_and_counters(self):
        incr = IncrementalSketch(np.eye(4))
        apply_update(incr, DeleteRows([0]))
        stats = incr.stats()
        assert stats["shape"] == (3, 4)
        assert stats["updates_applied"] == 1
        assert stats["dead_rows"] == 1

    def test_sketch_is_cached_until_next_update(self):
        incr = IncrementalSketch(np.eye(4))
        assert incr.sketch() is incr.sketch()
        apply_update(incr, DeleteRows([0]))
        first = incr.sketch()
        assert incr.sketch() is first

    def test_materialized_sketch_is_validating_clean(self):
        """The patched fields always satisfy the validating constructor."""
        rng = np.random.default_rng(81)
        dense = seeded_dense(82)
        incr = IncrementalSketch(sp.csr_array(dense.astype(float)))
        for delta in random_deltas(rng, dense.shape, 10):
            apply_update(incr, delta)
        snap = incr.sketch()
        MNCSketch(  # raises SketchError if any invariant is violated
            shape=snap.shape, hr=snap.hr, hc=snap.hc,
            her=snap.her, hec=snap.hec,
            fully_diagonal=snap.fully_diagonal, exact=snap.exact,
        )
