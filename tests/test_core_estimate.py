"""Unit tests for the MNC product estimator (Algorithm 1, Theorems 3.1/3.2)."""

import numpy as np
import pytest

from repro.core.estimate import (
    density_map_vector_estimate,
    estimate_product_nnz,
    estimate_product_sparsity,
    product_nnz_lower_bound,
    product_nnz_upper_bound,
)
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.matrix.ops import matmul
from repro.matrix.random import (
    diagonal_matrix,
    outer_product_pair,
    permutation_matrix,
    random_sparse,
    single_nnz_per_row,
)


def _sketches(a, b):
    return MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)


class TestTheorem31ExactCases:
    """max(hr_A) <= 1 or max(hc_B) <= 1 implies the estimate is exact."""

    def test_single_nnz_rows_left(self):
        a = single_nnz_per_row(300, 60, seed=1)
        b = random_sparse(60, 80, 0.2, seed=2)
        h_a, h_b = _sketches(a, b)
        assert estimate_product_nnz(h_a, h_b) == matmul(a, b).nnz

    def test_single_nnz_cols_right(self):
        a = random_sparse(80, 60, 0.2, seed=3)
        b = single_nnz_per_row(70, 60, seed=4).T  # single nnz per column
        h_a, h_b = _sketches(a, b)
        assert estimate_product_nnz(h_a, h_b) == matmul(a, b).nnz

    def test_permutation_left_preserves_sparsity(self):
        p = permutation_matrix(100, seed=5)
        x = random_sparse(100, 40, 0.3, seed=6)
        h_p, h_x = _sketches(p, x)
        assert estimate_product_nnz(h_p, h_x) == x.nnz

    def test_diagonal_scaling_preserves_sparsity(self):
        d = diagonal_matrix(100, seed=7)
        x = random_sparse(100, 40, 0.1, seed=8)
        h_d, h_x = _sketches(d, x)
        assert estimate_product_nnz(h_d, h_x) == x.nnz

    def test_nlp_sentence_encoding_exact(self):
        # The introductory example: token matrix (1 nnz/row) x embeddings.
        tokens = single_nnz_per_row(500, 50, seed=9)
        rng = np.random.default_rng(10)
        embeddings = rng.random((50, 16))
        embeddings[-1] = 0.0
        h_t, h_e = _sketches(tokens, embeddings)
        assert estimate_product_nnz(h_t, h_e) == matmul(tokens, embeddings).nnz


class TestBounds:
    def test_upper_bound_formula(self):
        a = random_sparse(50, 40, 0.1, seed=11)
        b = random_sparse(40, 60, 0.1, seed=12)
        h_a, h_b = _sketches(a, b)
        assert product_nnz_upper_bound(h_a, h_b) == min(
            h_a.nnz_rows * h_b.nnz_cols, 50 * 60
        )

    def test_upper_bound_holds(self):
        a = random_sparse(50, 40, 0.2, seed=13)
        b = random_sparse(40, 60, 0.2, seed=14)
        h_a, h_b = _sketches(a, b)
        assert matmul(a, b).nnz <= product_nnz_upper_bound(h_a, h_b)

    def test_lower_bound_holds(self):
        a = random_sparse(30, 20, 0.8, seed=15)
        b = random_sparse(20, 30, 0.8, seed=16)
        h_a, h_b = _sketches(a, b)
        assert matmul(a, b).nnz >= product_nnz_lower_bound(h_a, h_b)

    def test_inner_case_exact_via_upper_bound(self):
        # B1.5: dense row x dense column -> a single non-zero. The upper
        # bound nnz_rows * nnz_cols = 1 forces the exact answer.
        column, row = outer_product_pair(64)
        h_r, h_c = _sketches(row, column)
        assert estimate_product_nnz(h_r, h_c) == 1.0

    def test_outer_case_exact_via_lower_bound(self):
        # B1.4: dense column x dense row -> fully dense. The half-full
        # lower bound forces n*n.
        column, row = outer_product_pair(64)
        h_c, h_r = _sketches(column, row)
        assert estimate_product_nnz(h_c, h_r) == 64 * 64

    def test_basic_variant_misses_inner_case(self):
        column, row = outer_product_pair(64)
        h_r, h_c = _sketches(row, column)
        basic = estimate_product_nnz(h_r, h_c, use_extensions=False, use_bounds=False)
        assert basic > 1.0  # the bound is what makes full MNC exact here

    def test_estimate_between_bounds(self):
        for seed in range(5):
            a = random_sparse(40, 30, 0.3, seed=100 + seed)
            b = random_sparse(30, 40, 0.3, seed=200 + seed)
            h_a, h_b = _sketches(a, b)
            estimate = estimate_product_nnz(h_a, h_b)
            assert product_nnz_lower_bound(h_a, h_b) <= estimate
            assert estimate <= product_nnz_upper_bound(h_a, h_b)


class TestGenericAccuracy:
    def test_uniform_random_close(self):
        a = random_sparse(400, 300, 0.05, seed=17)
        b = random_sparse(300, 350, 0.05, seed=18)
        h_a, h_b = _sketches(a, b)
        truth = matmul(a, b).nnz
        estimate = estimate_product_nnz(h_a, h_b)
        assert truth / 1.15 <= estimate <= truth * 1.15

    def test_skewed_columns_close(self):
        from repro.matrix.random import power_law_columns

        a = power_law_columns(300, 200, total_nnz=4000, seed=19)
        b = random_sparse(200, 300, 0.05, seed=20)
        h_a, h_b = _sketches(a, b)
        truth = matmul(a, b).nnz
        estimate = estimate_product_nnz(h_a, h_b)
        assert truth / 1.3 <= estimate <= truth * 1.3

    def test_sparsity_scaling(self):
        a = random_sparse(100, 50, 0.1, seed=21)
        b = random_sparse(50, 80, 0.1, seed=22)
        h_a, h_b = _sketches(a, b)
        nnz = estimate_product_nnz(h_a, h_b)
        assert estimate_product_sparsity(h_a, h_b) == pytest.approx(nnz / (100 * 80))


class TestEdgeCases:
    def test_empty_operand_gives_zero(self):
        a = np.zeros((10, 5))
        b = random_sparse(5, 8, 0.5, seed=23)
        h_a, h_b = _sketches(a, b)
        assert estimate_product_nnz(h_a, h_b) == 0.0

    def test_shape_mismatch(self):
        h_a = MNCSketch.from_matrix(np.ones((2, 3)))
        h_b = MNCSketch.from_matrix(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            estimate_product_nnz(h_a, h_b)

    def test_dense_times_dense_is_full(self):
        h_a = MNCSketch.from_matrix(np.ones((6, 6)))
        h_b = MNCSketch.from_matrix(np.ones((6, 6)))
        assert estimate_product_nnz(h_a, h_b) == 36.0

    def test_zero_output_dimension(self):
        h_a = MNCSketch.from_matrix(np.zeros((0, 4)))
        h_b = MNCSketch.from_matrix(np.ones((4, 3)))
        assert estimate_product_nnz(h_a, h_b) == 0.0
        assert estimate_product_sparsity(h_a, h_b) == 0.0


class TestDensityMapVectorEstimate:
    def test_zero_cells(self):
        assert density_map_vector_estimate(np.array([1.0]), np.array([1.0]), 0) == 0.0

    def test_saturates_at_cells(self):
        v = np.array([10.0, 10.0])
        assert density_map_vector_estimate(v, v, 100.0) <= 100.0

    def test_single_slice_exact(self):
        # One outer product of a x b non-zeros in a*b cells is fully dense.
        assert density_map_vector_estimate(
            np.array([4.0]), np.array([5.0]), 20.0
        ) == pytest.approx(20.0)

    def test_monotone_in_counts(self):
        low = density_map_vector_estimate(np.array([2.0, 2.0]), np.array([2.0, 2.0]), 100)
        high = density_map_vector_estimate(np.array([5.0, 5.0]), np.array([5.0, 5.0]), 100)
        assert high > low
