"""Tests for the fingerprint-sharded store (repro.catalog.sharded)."""

import threading

import numpy as np
import pytest

from repro.catalog.sharded import ShardedSketchStore, ShardRouter
from repro.core.serialize import save_sketch
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.matrix.random import random_sparse


def _sketch(seed, m=30, n=24, sparsity=0.2):
    return MNCSketch.from_matrix(random_sparse(m, n, sparsity, seed=seed))


class TestRouter:
    def test_hex_prefix_routing_is_deterministic(self):
        router = ShardRouter(8)
        key = "deadbeefcafe0123"
        assert router.shard_for(key) == router.shard_for(key)
        assert 0 <= router.shard_for(key) < 8

    def test_hex_keys_spread_across_shards(self):
        router = ShardRouter(8)
        # Real fingerprints are uniform hex; synthesize a spread of them.
        import hashlib

        shards = {
            router.shard_for(hashlib.blake2b(bytes([i])).hexdigest())
            for i in range(64)
        }
        assert len(shards) == 8

    def test_non_hex_key_still_routes(self):
        router = ShardRouter(4)
        index = router.shard_for("not-hex-at-all")
        assert 0 <= index < 4
        assert router.shard_for("not-hex-at-all") == index

    def test_single_shard_everything_routes_to_zero(self):
        router = ShardRouter(1)
        assert router.shard_for("abc123") == 0
        assert router.shard_for("zzz") == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(SketchError):
            ShardRouter(0)
        with pytest.raises(SketchError):
            ShardRouter(4, prefix_len=0)


class TestShardedBasics:
    def test_put_get_round_trip(self):
        store = ShardedSketchStore(num_shards=4)
        sketch = _sketch(1)
        store.put("aa11", sketch)
        assert store.get("aa11") is sketch
        assert "aa11" in store
        assert len(store) == 1

    def test_keys_and_discard(self):
        store = ShardedSketchStore(num_shards=4)
        for index in range(10):
            store.put(f"{index:02x}key", _sketch(index))
        assert len(store) == 10
        assert sorted(store.keys()) == sorted(f"{i:02x}key" for i in range(10))
        assert store.discard("00key")
        assert not store.discard("00key")
        assert len(store) == 9

    def test_clear(self):
        store = ShardedSketchStore(num_shards=4)
        for index in range(6):
            store.put(f"{index:02x}", _sketch(index))
        store.clear()
        assert len(store) == 0
        assert store.bytes_used == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(SketchError):
            ShardedSketchStore(budget_bytes=0)
        with pytest.raises(SketchError):
            ShardedSketchStore(ttl_seconds=0)

    def test_stats_aggregate_across_shards(self):
        store = ShardedSketchStore(num_shards=4, budget_bytes=1 << 20)
        store.put("00a", _sketch(1))
        store.put("01b", _sketch(2))
        store.get("00a")
        store.get("missing")
        stats = store.stats()
        assert stats.puts == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 2
        assert stats.budget_bytes <= 1 << 20
        assert len(store.shard_stats()) == 4

    def test_budget_split_evicts_within_shard(self):
        one = _sketch(1)
        # Two shards; each shard's budget holds ~1.5 sketches.
        store = ShardedSketchStore(
            num_shards=2, budget_bytes=3 * one.size_bytes()
        )
        for index in range(12):
            store.put(f"{index:x}0", _sketch(index % 3))
        assert store.bytes_used <= 3 * one.size_bytes()
        assert store.stats().evictions > 0


class TestTtlTier:
    def test_expired_entries_demote_to_disk(self, tmp_path):
        clock = {"now": 0.0}
        store = ShardedSketchStore(
            num_shards=2,
            spill_dir=tmp_path,
            ttl_seconds=10.0,
            clock=lambda: clock["now"],
        )
        sketch = _sketch(3)
        store.put("0abc", sketch)
        clock["now"] = 5.0
        assert store.get("0abc") is sketch  # still fresh; touch refreshes
        clock["now"] = 16.0  # 11s idle > ttl
        assert store.evict_expired() == 1
        assert store.ttl_evictions == 1
        assert len(store) == 0
        assert (tmp_path / "0abc.npz").exists()
        # The disk tier still answers for it.
        reloaded = store.get("0abc")
        assert reloaded is not None
        np.testing.assert_array_equal(reloaded.hr, sketch.hr)

    def test_touch_refreshes_ttl(self, tmp_path):
        clock = {"now": 0.0}
        store = ShardedSketchStore(
            num_shards=1,
            spill_dir=tmp_path,
            ttl_seconds=10.0,
            clock=lambda: clock["now"],
        )
        store.put("0a", _sketch(1))
        for step in range(1, 6):
            clock["now"] = step * 8.0  # each get lands before expiry
            assert store.get("0a") is not None
        assert store.ttl_evictions == 0

    def test_lazy_sweep_on_shard_touch(self, tmp_path):
        clock = {"now": 0.0}
        store = ShardedSketchStore(
            num_shards=1,
            spill_dir=tmp_path,
            ttl_seconds=5.0,
            clock=lambda: clock["now"],
        )
        store.put("0old", _sketch(1))
        clock["now"] = 100.0
        # Touching the shard with an unrelated put sweeps the expired key.
        store.put("0new", _sketch(2))
        assert store.ttl_evictions == 1
        assert store.keys() == ["0new"]

    def test_no_ttl_means_no_demotion(self):
        store = ShardedSketchStore(num_shards=2)
        store.put("0a", _sketch(1))
        assert store.evict_expired() == 0
        assert len(store) == 1


class TestWarmStartPersist:
    def test_persist_then_warm_start_round_trips(self, tmp_path):
        store = ShardedSketchStore(num_shards=4)
        originals = {}
        for index in range(10):
            key = f"{index:02x}shard"
            originals[key] = _sketch(index)
            store.put(key, originals[key])
        assert store.persist(tmp_path) == 10

        fresh = ShardedSketchStore(num_shards=4)
        keys = fresh.warm_start(tmp_path)
        assert keys == sorted(originals)
        for key, sketch in originals.items():
            np.testing.assert_array_equal(fresh.get(key).hr, sketch.hr)

    def test_warm_start_matches_flat_store(self, tmp_path):
        """Sharded and flat stores load identical key sets from one dir."""
        from repro.catalog.store import SketchStore

        for index in range(8):
            save_sketch(tmp_path / f"{index:x}0aa.npz", _sketch(index))
        flat = SketchStore()
        sharded = ShardedSketchStore(num_shards=3)
        assert sharded.warm_start(tmp_path) == flat.warm_start(tmp_path)

    def test_warm_start_skips_corrupt_files(self, tmp_path):
        save_sketch(tmp_path / "00good.npz", _sketch(1))
        save_sketch(tmp_path / "ffgood.npz", _sketch(2))
        (tmp_path / "11bad.npz").write_bytes(b"not an npz")
        (tmp_path / "eebad.npz").write_bytes(b"")
        store = ShardedSketchStore(num_shards=4)
        assert store.warm_start(tmp_path) == ["00good", "ffgood"]
        assert store.stats().warm_skipped == 2

    def test_warm_start_missing_directory(self, tmp_path):
        with pytest.raises(SketchError):
            ShardedSketchStore().warm_start(tmp_path / "nope")

    def test_warm_start_empty_directory(self, tmp_path):
        assert ShardedSketchStore().warm_start(tmp_path) == []

    def test_warm_start_single_worker(self, tmp_path):
        for index in range(5):
            save_sketch(tmp_path / f"{index:x}1.npz", _sketch(index))
        store = ShardedSketchStore(num_shards=4)
        assert len(store.warm_start(tmp_path, workers=1)) == 5

    def test_persist_needs_target(self):
        with pytest.raises(SketchError):
            ShardedSketchStore().persist()


class TestTtlWarmStartRace:
    """Lock-ordering regression tests for TTL demotion vs warm_start.

    The original sweep deleted every expired timestamp up front, released
    the shard lock, and then demoted unconditionally — so a warm start (or
    any get/put) landing between collection and demotion had its freshly
    loaded entry demoted straight back to disk while its new timestamp said
    "resident and fresh". The fix re-validates each key's timestamp under
    the shard lock at the moment of demotion and makes warm_start's
    put+touch a single critical section.
    """

    def test_retouched_key_survives_inflight_sweep(self, tmp_path):
        """A key refreshed after sweep collection must not be demoted.

        Deterministic interleaving: the sweep collects both expired keys;
        while it demotes the first, a refresh of the second lands. The
        refresh is injected from the demote hook, which runs on the sweep
        thread — the shard lock is an RLock, so this faithfully simulates
        a touch winning the lock between the sweep's loop iterations
        without risking a deadlock on the post-fix locking.
        """
        clock = {"now": 0.0}
        store = ShardedSketchStore(
            num_shards=1,
            spill_dir=tmp_path,
            ttl_seconds=10.0,
            clock=lambda: clock["now"],
        )
        store.put("0aaa", _sketch(1))
        store.put("0bbb", _sketch(2))
        clock["now"] = 100.0  # both now expired

        shard = store._shards[0]
        real_demote = shard.demote

        def demote_and_refresh(key):
            resident = real_demote(key)
            if key == "0aaa":
                # A concurrent warm_start/get re-touches the *other*
                # collected key before the sweep reaches it.
                store._touch(0, "0bbb")
            return resident

        shard.demote = demote_and_refresh
        try:
            demoted = store.evict_expired()
        finally:
            shard.demote = real_demote

        assert demoted == 1
        assert store.ttl_evictions == 1
        # The re-touched key stayed resident; only the stale one spilled.
        assert store.keys() == ["0bbb"]
        assert (tmp_path / "0aaa.npz").exists()
        assert not (tmp_path / "0bbb.npz").exists()

    def test_warm_started_entries_are_ttl_tracked_atomically(self, tmp_path):
        clock = {"now": 0.0}
        for index in range(3):
            save_sketch(tmp_path / f"{index:x}0ws.npz", _sketch(index))
        store = ShardedSketchStore(
            num_shards=2,
            spill_dir=tmp_path,
            ttl_seconds=10.0,
            clock=lambda: clock["now"],
        )
        assert len(store.warm_start(tmp_path)) == 3
        # Every resident entry has a timestamp and vice versa.
        for index, shard in enumerate(store._shards):
            with shard._lock:
                assert set(store._touched[index]) == set(shard.keys())
        clock["now"] = 100.0
        assert store.evict_expired() == 3
        assert len(store) == 0

    def test_warm_start_vs_ttl_sweep_hammer(self, tmp_path):
        """Concurrent warm starts and sweeps: nothing lost, books balance."""
        clock = {"now": 0.0}
        clock_lock = threading.Lock()

        def now():
            with clock_lock:
                return clock["now"]

        sketches = {f"{i:x}race": _sketch(i) for i in range(10)}
        for key, sketch in sketches.items():
            save_sketch(tmp_path / f"{key}.npz", sketch)

        store = ShardedSketchStore(
            num_shards=2, spill_dir=tmp_path, ttl_seconds=1.0, clock=now
        )
        errors = []
        barrier = threading.Barrier(3)
        stop = threading.Event()

        def warm():
            try:
                barrier.wait()
                for _ in range(15):
                    loaded = store.warm_start(tmp_path)
                    assert sorted(loaded) == sorted(sketches)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)
            finally:
                stop.set()

        def sweep():
            try:
                barrier.wait()
                while not stop.is_set():
                    with clock_lock:
                        clock["now"] += 0.4
                    store.evict_expired()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=warm),
            threading.Thread(target=sweep),
            threading.Thread(target=sweep),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Bookkeeping consistency first (before get() re-promotes): every
        # resident key is TTL-tracked and no timestamp outlives its entry —
        # the racy sweep left fresh timestamps pointing at demoted entries.
        for index, shard in enumerate(store._shards):
            with shard._lock:
                assert set(store._touched[index]) == set(shard.keys())
        # Every key still answers from the memory+disk union, intact.
        for key, sketch in sketches.items():
            value = store.get(key)
            assert value is not None
            np.testing.assert_array_equal(value.hr, sketch.hr)


class TestConcurrency:
    def test_hammering_threads_across_shards(self):
        """Many threads over many keys: no lost updates, total budget held."""
        sketches = {f"{seed:02x}conc": _sketch(seed) for seed in range(16)}
        any_size = next(iter(sketches.values())).size_bytes()
        budget = 8 * any_size
        store = ShardedSketchStore(num_shards=4, budget_bytes=budget)
        errors = []
        barrier = threading.Barrier(8)

        def hammer(worker):
            try:
                barrier.wait()
                for round_no in range(80):
                    key = f"{(worker * 5 + round_no) % 16:02x}conc"
                    cached = store.get(key)
                    if cached is None:
                        store.put(key, sketches[key])
                        cached = store.get(key)
                    if cached is not None:
                        np.testing.assert_array_equal(
                            cached.hr, sketches[key].hr
                        )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.bytes_used <= budget
        assert store.stats().entries == len(store.keys())

    def test_concurrent_warm_start_callers(self, tmp_path):
        good = {f"{i:x}0warm": _sketch(i) for i in range(6)}
        for key, sketch in good.items():
            save_sketch(tmp_path / f"{key}.npz", sketch)
        (tmp_path / "99bad.npz").write_bytes(b"\x00" * 16)

        store = ShardedSketchStore(num_shards=3)
        errors = []
        barrier = threading.Barrier(4)

        def warm():
            try:
                barrier.wait()
                loaded = store.warm_start(tmp_path)
                assert sorted(loaded) == sorted(good)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=warm) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for key in good:
            assert store.get(key) is not None
        assert store.stats().warm_skipped == 4

    def test_concurrent_ttl_sweeps_and_reads(self, tmp_path):
        """TTL sweeps racing readers never raise or double-count."""
        clock = {"now": 0.0}
        lock = threading.Lock()

        def now():
            with lock:
                return clock["now"]

        store = ShardedSketchStore(
            num_shards=2, spill_dir=tmp_path, ttl_seconds=1.0, clock=now
        )
        sketches = {f"{i:x}ttl": _sketch(i) for i in range(8)}
        for key, sketch in sketches.items():
            store.put(key, sketch)
        errors = []
        barrier = threading.Barrier(4)

        def churn(worker):
            try:
                barrier.wait()
                for round_no in range(50):
                    with lock:
                        clock["now"] += 0.1
                    key = f"{(worker + round_no) % 8:x}ttl"
                    value = store.get(key)
                    if value is None:
                        store.put(key, sketches[key])
                    store.evict_expired()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Spilled entries remain loadable.
        for key, sketch in sketches.items():
            value = store.get(key)
            if value is not None:
                np.testing.assert_array_equal(value.hr, sketch.hr)
