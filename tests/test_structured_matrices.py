"""Tests for the triangular/symmetric/block-diagonal generators and probes,
and how MNC handles those structures."""

import numpy as np
import pytest

from repro.core.estimate import estimate_product_nnz
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.matrix import ops as mops
from repro.matrix.properties import (
    is_lower_triangular,
    is_symmetric,
    is_upper_triangular,
)
from repro.matrix.random import (
    block_diagonal_matrix,
    random_sparse,
    symmetric_matrix,
    triangular_matrix,
)
from repro.sparsest.metrics import relative_error


class TestTriangular:
    def test_lower_structure(self):
        matrix = triangular_matrix(20, seed=1)
        assert is_lower_triangular(matrix)
        assert not is_upper_triangular(matrix)

    def test_upper_structure(self):
        matrix = triangular_matrix(20, upper=True, seed=2)
        assert is_upper_triangular(matrix)

    def test_dense_triangle_nnz(self):
        matrix = triangular_matrix(10, sparsity=1.0, seed=3)
        assert matrix.nnz == 10 * 11 // 2

    def test_sparsity_within_triangle(self):
        matrix = triangular_matrix(100, sparsity=0.3, seed=4)
        full = 100 * 101 // 2
        assert 0.2 * full < matrix.nnz < 0.4 * full

    def test_invalid_sparsity(self):
        with pytest.raises(ShapeError):
            triangular_matrix(5, sparsity=2.0)

    def test_probes_on_empty_and_diag(self):
        assert is_lower_triangular(np.zeros((3, 3)))
        assert is_upper_triangular(np.zeros((3, 3)))
        assert is_lower_triangular(np.eye(3))
        assert is_upper_triangular(np.eye(3))

    def test_mnc_on_triangular_product(self):
        # L @ L for dense lower-triangular: the result is again the dense
        # triangle. Count vectors cannot see the triangular *alignment*
        # (this is exactly the property Sparso would propagate explicitly,
        # paper Section 7), so MNC over-estimates the upper half — bounded
        # by a factor ~2, never more than the full square.
        lower = triangular_matrix(60, seed=5)
        truth = mops.matmul(lower, lower).nnz
        h = MNCSketch.from_matrix(lower)
        estimate = estimate_product_nnz(h, h)
        assert truth <= estimate <= 2.2 * truth


class TestSymmetric:
    def test_structure(self):
        matrix = symmetric_matrix(40, 0.2, seed=6)
        assert is_symmetric(matrix)

    def test_rectangular_not_symmetric(self):
        assert not is_symmetric(np.ones((2, 3)))

    def test_asymmetric_detected(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        assert not is_symmetric(matrix)

    def test_values_ignored_structure_counts(self):
        matrix = np.array([[0, 2.0], [5.0, 0]])
        assert is_symmetric(matrix)

    def test_gram_like_product_symmetric(self):
        x = random_sparse(30, 20, 0.3, seed=7)
        gram = mops.matmul(mops.transpose(x), x)
        assert is_symmetric(gram)


class TestBlockDiagonal:
    def test_off_block_zero(self):
        matrix = block_diagonal_matrix([4, 6], sparsity=1.0, seed=8)
        dense = matrix.toarray()
        assert dense[:4, 4:].sum() == 0
        assert dense[4:, :4].sum() == 0

    def test_shape(self):
        matrix = block_diagonal_matrix([3, 5, 2], seed=9)
        assert matrix.shape == (10, 10)

    def test_product_stays_block_diagonal(self):
        a = block_diagonal_matrix([8, 8], sparsity=0.8, seed=10)
        product = mops.matmul(a, a)
        dense = product.toarray()
        assert dense[:8, 8:].sum() == 0

    def test_mnc_close_on_block_diagonal_product(self):
        a = block_diagonal_matrix([32, 32, 32], sparsity=0.4, seed=11)
        truth = mops.matmul(a, a).nnz
        h = MNCSketch.from_matrix(a)
        estimate = estimate_product_nnz(h, h)
        # Count vectors can't see the block alignment; the estimate is
        # within a moderate factor (over-estimates cross-block collisions).
        assert relative_error(truth, estimate) < 4.0
