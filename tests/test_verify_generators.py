"""Tests for the verify-case generators (repro.verify.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.opcodes import Op
from repro.verify import all_generators, exact_structure, generate_case
from repro.verify.generators import CASE_OPS, case_tags, retag

GENERATORS = all_generators()


def test_generator_registry_names():
    assert set(GENERATORS) >= {
        "uniform", "structured", "adversarial", "chain", "dag"
    }


@pytest.mark.parametrize("generator", GENERATORS)
def test_cases_are_deterministic(generator):
    for index in range(6):
        first = generate_case(generator, seed=3, index=index)
        second = generate_case(generator, seed=3, index=index)
        assert first.root.shape == second.root.shape
        assert first.root.op == second.root.op
        assert first.tags == second.tags
        assert exact_structure(first.root).nnz == exact_structure(second.root).nnz


def test_different_seeds_differ():
    shapes_a = [generate_case("uniform", 0, i).root.shape for i in range(8)]
    shapes_b = [generate_case("uniform", 1, i).root.shape for i in range(8)]
    assert shapes_a != shapes_b


def test_uniform_covers_every_opcode():
    ops = {
        generate_case("uniform", 0, index).root.op
        for index in range(2 * len(CASE_OPS))
    }
    assert ops == set(CASE_OPS)


def test_adversarial_produces_zero_dim_and_dense():
    tags = set()
    for index in range(26):
        tags |= generate_case("adversarial", 0, index).tags
    assert "zero_dim" in tags
    assert "dense" in tags
    assert "empty" in tags


def test_chain_and_dag_are_multi_op():
    for generator in ("chain", "dag"):
        multi = [
            case for case in (
                generate_case(generator, 0, index) for index in range(6)
            )
            if "single_op" not in case.tags
        ]
        assert multi, f"{generator} produced only single-op cases"


def test_truth_matches_structure():
    case = generate_case("structured", 5, 2)
    assert case.truth_nnz() == float(exact_structure(case.root).nnz)


def test_case_tags_single_op():
    case = generate_case("uniform", 0, 0)
    tags = case_tags(case.root)
    assert case.root.op.value in tags
    if all(c.op is Op.LEAF for c in case.root.inputs):
        assert "single_op" in tags


def test_retag_recomputes():
    case = generate_case("uniform", 0, 1)
    stale = case.tags
    retagged = retag(case)
    assert retagged.tags == case_tags(retagged.root)
    assert retagged.tags == stale  # same root => same tags


def test_exact_structure_is_binary():
    case = generate_case("dag", 2, 3)
    structure = exact_structure(case.root)
    if structure.nnz:
        assert np.all(structure.data == 1.0)


def test_unknown_generator_raises():
    with pytest.raises(ValueError):
        generate_case("no_such_generator", 0, 0)
