"""Unit tests for repro.matrix.properties."""

import numpy as np
import scipy.sparse as sp

from repro.matrix.properties import (
    col_nnz,
    density,
    is_diagonal,
    is_fully_diagonal,
    is_permutation,
    nnz,
    row_nnz,
    sparsity,
)
from repro.matrix.random import diagonal_matrix, permutation_matrix


class TestCounts:
    def test_nnz(self):
        assert nnz(np.array([[1, 0], [2, 3]])) == 3

    def test_nnz_ignores_explicit_zeros(self):
        coo = sp.coo_array(
            (np.array([0.0, 1.0]), (np.array([0, 0]), np.array([0, 1]))),
            shape=(1, 2),
        )
        assert nnz(coo) == 1

    def test_row_nnz(self):
        counts = row_nnz(np.array([[1, 1, 0], [0, 0, 0], [1, 0, 1]]))
        np.testing.assert_array_equal(counts, [2, 0, 2])

    def test_col_nnz(self):
        counts = col_nnz(np.array([[1, 1, 0], [0, 0, 0], [1, 0, 1]]))
        np.testing.assert_array_equal(counts, [2, 1, 1])

    def test_row_col_sums_agree(self):
        matrix = np.array([[1, 0, 2], [0, 3, 0]])
        assert row_nnz(matrix).sum() == col_nnz(matrix).sum() == nnz(matrix)


class TestSparsity:
    def test_basic(self):
        assert sparsity(np.array([[1, 0], [0, 0]])) == 0.25

    def test_empty_shape(self):
        assert sparsity(np.zeros((0, 3))) == 0.0

    def test_dense(self):
        assert sparsity(np.ones((3, 3))) == 1.0

    def test_density_alias(self):
        matrix = np.array([[1, 0], [1, 1]])
        assert density(matrix) == sparsity(matrix)


class TestDiagonal:
    def test_identity_is_diagonal(self):
        assert is_diagonal(np.eye(4))

    def test_off_diagonal_not(self):
        matrix = np.eye(4)
        matrix[0, 1] = 1
        assert not is_diagonal(matrix)

    def test_partial_diagonal_is_diagonal_but_not_fully(self):
        matrix = np.diag([1.0, 0.0, 2.0])
        assert is_diagonal(matrix)
        assert not is_fully_diagonal(matrix)

    def test_fully_diagonal(self):
        assert is_fully_diagonal(diagonal_matrix(10, seed=1))

    def test_rectangular_not_fully_diagonal(self):
        assert not is_fully_diagonal(np.zeros((2, 3)))

    def test_all_zero_square_is_diagonal(self):
        assert is_diagonal(np.zeros((3, 3)))


class TestPermutation:
    def test_random_permutation(self):
        assert is_permutation(permutation_matrix(20, seed=3))

    def test_identity(self):
        assert is_permutation(np.eye(5))

    def test_duplicate_column_rejected(self):
        matrix = np.zeros((2, 2))
        matrix[0, 0] = matrix[1, 0] = 1
        assert not is_permutation(matrix)

    def test_rectangular_rejected(self):
        assert not is_permutation(np.ones((2, 3)))

    def test_two_per_row_rejected(self):
        matrix = np.zeros((2, 2))
        matrix[0, :] = 1
        assert not is_permutation(matrix)
