"""Property-style round-trip tests for core/serialize.py over the
verification generator zoo: every sketch a generator can produce must
survive array and file (de)serialization bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.serialize import (
    load_sketch,
    save_sketch,
    sketch_from_arrays,
    sketch_to_arrays,
)
from repro.core.sketch import MNCSketch
from repro.verify import generate_case

ZOO = [
    ("uniform", 0), ("uniform", 3),
    ("structured", 1), ("structured", 7),
    ("adversarial", 0),   # all-zero
    ("adversarial", 4),   # 1 x n
    ("adversarial", 6),   # all-dense
    ("chain", 2),
    ("dag", 5),
]


def _zoo_matrices():
    for generator, index in ZOO:
        case = generate_case(generator, seed=42, index=index)
        for position, leaf in enumerate(case.root.leaves()):
            yield f"{generator}#{index}.{position}", leaf.matrix


MATRICES = list(_zoo_matrices())


def _assert_identical(original: MNCSketch, decoded: MNCSketch) -> None:
    assert decoded.shape == original.shape
    assert np.array_equal(decoded.hr, original.hr)
    assert np.array_equal(decoded.hc, original.hc)
    for ext in ("her", "hec"):
        left = getattr(original, ext)
        right = getattr(decoded, ext)
        if left is None:
            assert right is None
        else:
            assert np.array_equal(left, right)
    assert decoded.fully_diagonal == original.fully_diagonal
    assert decoded.exact == original.exact


@pytest.mark.parametrize(
    "matrix", [m for _, m in MATRICES], ids=[label for label, _ in MATRICES]
)
def test_array_roundtrip_bit_identical(matrix):
    sketch = MNCSketch.from_matrix(matrix)
    _assert_identical(sketch, sketch_from_arrays(sketch_to_arrays(sketch)))


@pytest.mark.parametrize(
    "matrix", [m for _, m in MATRICES[::3]],
    ids=[label for label, _ in MATRICES[::3]],
)
def test_file_roundtrip_bit_identical(matrix, tmp_path):
    sketch = MNCSketch.from_matrix(matrix)
    path = tmp_path / "sketch.npz"
    save_sketch(path, sketch)
    _assert_identical(sketch, load_sketch(path))


def test_roundtrip_without_extensions(tmp_path):
    matrix = sp.csr_array(np.eye(5))
    sketch = MNCSketch.from_matrix(matrix, with_extensions=False)
    assert sketch.her is None and sketch.hec is None
    _assert_identical(sketch, sketch_from_arrays(sketch_to_arrays(sketch)))
    path = tmp_path / "bare.npz"
    save_sketch(path, sketch)
    _assert_identical(sketch, load_sketch(path))


def test_roundtrip_zero_dim():
    for shape in ((0, 4), (4, 0), (0, 0)):
        sketch = MNCSketch.from_matrix(sp.csr_array(shape))
        _assert_identical(sketch, sketch_from_arrays(sketch_to_arrays(sketch)))
