"""Tests for the PR-6 observability layer: the process-wide metrics
registry, the accuracy residual ledger, snapshot algebra
(delta/merge), the JSONL and Prometheus exporters, exception-safe
spans, the flight recorder, atexit flush durability, and the
multi-file ``repro stats`` CLI.

(``tests/test_metrics.py`` covers the *accuracy* metrics of the
SparsEst harness — this module covers the telemetry registry.)
"""

from __future__ import annotations

import json
import math
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observability import (
    FLIGHT,
    METRICS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    MetricsSnapshot,
    ResidualRecord,
    merge_trace_data,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_snapshot,
    prometheus_exposition,
    read_metrics_jsonl,
    read_trace,
    record_residual,
    reset_metrics,
    residual_table,
    write_metrics_jsonl,
    write_trace,
)
from repro.observability.collector import RecordingCollector, using_collector
from repro.observability.metrics import _Histogram, _relative_error
from repro.observability.trace import count, timed_span


@pytest.fixture(autouse=True)
def _clean_slate():
    """Each test starts from an empty registry and a disarmed recorder."""
    reset_metrics()
    FLIGHT.clear()
    FLIGHT.arm(None)
    yield
    reset_metrics()
    FLIGHT.clear()
    FLIGHT.arm(None)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2.5)
        registry.inc("b", 4)
        snapshot = registry.snapshot(sync_hotpath=False)
        assert snapshot.counters == {"a": 3.5, "b": 4.0}

    def test_gauges_last_writer_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 10)
        registry.set_gauge("g", 7)
        assert registry.snapshot(sync_hotpath=False).gauges == {"g": 7.0}

    def test_module_helpers_hit_global_registry(self):
        metric_inc("helper.counter", 2)
        metric_set("helper.gauge", 5)
        metric_observe("helper.hist", 3.0)
        snapshot = metrics_snapshot()
        assert snapshot.counters["helper.counter"] == 2.0
        assert snapshot.gauges["helper.gauge"] == 5.0
        assert snapshot.histograms["helper.hist"]["count"] == 1

    def test_count_feeds_registry_without_tracing(self):
        count("untraced.counter", 3)
        assert metrics_snapshot().counters["untraced.counter"] == 3.0

    def test_hotpath_counters_absorbed_as_deltas(self):
        from repro.core.hotpath import HOTPATH
        from repro.core.sketch import MNCSketch
        from repro.matrix.random import random_sparse

        before = HOTPATH.snapshot().get("validated_constructions", 0)
        MNCSketch.from_matrix(random_sparse(30, 30, 0.1, seed=1))
        first = metrics_snapshot()
        gained = first.counters.get("hotpath.validated_constructions", 0.0)
        assert gained >= 1
        # Syncing twice must not double-count (delta-based absorption).
        second = metrics_snapshot()
        assert (
            second.counters["hotpath.validated_constructions"]
            == first.counters["hotpath.validated_constructions"]
        )
        assert HOTPATH.snapshot()["validated_constructions"] > before

    def test_ledger_capacity_is_validated(self):
        with pytest.raises(ValueError, match="ledger_capacity"):
            MetricsRegistry(ledger_capacity=0)


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------

class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = _Histogram()
        for value in [0.5, 4.0, 4.5, 100.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(109.0)
        assert histogram.min == 0.5
        assert histogram.max == 100.0

    def test_quantiles_bucket_resolved_and_clamped(self):
        histogram = _Histogram()
        for _ in range(99):
            histogram.observe(3.0)  # bucket [2, 4)
        histogram.observe(1000.0)
        # p50 lands in the [2,4) bucket; midpoint 2^1.5 ~ 2.83, within
        # one octave of the true median and clamped into [min, max].
        assert 2.0 <= histogram.quantile(50.0) <= 4.0
        # The top quantile resolves to the 1000.0 observation's bucket
        # (one-octave error bound: within [512, 1024)).
        assert 512.0 <= histogram.quantile(99.9) <= 1000.0

    def test_zeros_bucket(self):
        histogram = _Histogram()
        histogram.observe(0.0)
        histogram.observe(-1.0)
        histogram.observe(8.0)
        assert histogram.zeros == 2
        assert histogram.quantile(50.0) <= 0.0
        state = histogram.state()
        assert _Histogram.from_state(state).summary() == histogram.summary()

    def test_nan_observations_ignored(self):
        histogram = _Histogram()
        histogram.observe(math.nan)
        assert histogram.count == 0


# ----------------------------------------------------------------------
# Snapshot algebra: delta_since / merge
# ----------------------------------------------------------------------

class TestSnapshotAlgebra:
    def test_delta_plus_baseline_equals_final(self):
        registry = MetricsRegistry()
        registry.inc("x", 2)
        registry.observe("h", 3.0)
        baseline = registry.snapshot(sync_hotpath=False)
        registry.inc("x", 5)
        registry.inc("y")
        registry.observe("h", 9.0)
        registry.record_residual(ResidualRecord(
            "s", "e", "w", "op", 10.0, 12.0, 1.2,
        ))
        final = registry.snapshot(sync_hotpath=False)
        delta = final.delta_since(baseline)
        assert delta.counters == {"x": 5.0, "y": 1.0}
        assert len(delta.residuals) == 1
        rebuilt = baseline.merge(delta)
        assert rebuilt.counters == final.counters
        assert rebuilt.histograms["h"]["count"] == 2
        assert rebuilt.histograms["h"]["sum"] == pytest.approx(12.0)

    def test_unchanged_gauges_excluded_from_delta(self):
        registry = MetricsRegistry()
        registry.set_gauge("stable", 4)
        registry.set_gauge("moving", 1)
        baseline = registry.snapshot(sync_hotpath=False)
        registry.set_gauge("moving", 2)
        delta = registry.snapshot(sync_hotpath=False).delta_since(baseline)
        assert delta.gauges == {"moving": 2.0}

    def test_merge_adds_counters_and_concatenates_ledgers(self):
        one = MetricsSnapshot(
            counters={"a": 1.0},
            residuals=[ResidualRecord("s", "e", "w1", "op", 1, 1, 1.0)],
            residuals_seen=1,
        )
        two = MetricsSnapshot(
            counters={"a": 2.0, "b": 3.0},
            residuals=[ResidualRecord("s", "e", "w2", "op", 2, 2, 1.0)],
            residuals_seen=1,
        )
        merged = one.merge(two)
        assert merged.counters == {"a": 3.0, "b": 3.0}
        assert [r.workload for r in merged.residuals] == ["w1", "w2"]
        assert merged.residuals_seen == 2

    def test_empty_property(self):
        assert MetricsSnapshot().empty
        assert not MetricsSnapshot(counters={"a": 1.0}).empty


# ----------------------------------------------------------------------
# Residual ledger
# ----------------------------------------------------------------------

class TestResidualLedger:
    def test_record_residual_computes_m1(self):
        record = record_residual(
            source="test", estimator="E", workload="w", op="matmul",
            estimate=200.0, truth=100.0,
        )
        assert record.relative_error == pytest.approx(2.0)
        snapshot = metrics_snapshot()
        assert snapshot.counters["residual.count.test.E"] == 1.0
        assert "residual.relative_error.test" in snapshot.histograms

    def test_nonfinite_residuals_counted_separately(self):
        record = record_residual(
            source="test", estimator="E", workload="w", op="matmul",
            estimate=5.0, truth=0.0,
        )
        assert math.isinf(record.relative_error)
        snapshot = metrics_snapshot()
        assert snapshot.counters["residual.nonfinite.test.E"] == 1.0
        assert "residual.relative_error.test" not in snapshot.histograms

    def test_relative_error_conventions(self):
        assert _relative_error(0.0, 0.0) == 1.0
        assert math.isinf(_relative_error(0.0, 3.0))
        assert _relative_error(10.0, 5.0) == 2.0
        assert _relative_error(5.0, 10.0) == 2.0

    def test_ledger_is_bounded_and_counts_drops(self):
        registry = MetricsRegistry(ledger_capacity=4)
        for index in range(10):
            registry.record_residual(ResidualRecord(
                "s", "e", f"w{index}", "op", 1, 1, 1.0,
            ))
        snapshot = registry.snapshot(sync_hotpath=False)
        assert len(snapshot.residuals) == 4
        assert snapshot.residuals_seen == 10
        assert snapshot.residuals_dropped == 6
        assert [r.workload for r in snapshot.residuals] == [
            "w6", "w7", "w8", "w9",
        ]

    def test_residual_table_renders_groups(self):
        records = [
            ResidualRecord("sparsest", "MNC", "B1.1", "dag", 10, 10, 1.0, 0.1),
            ResidualRecord("sparsest", "MNC", "B1.2", "dag", 0, 5, math.inf),
        ]
        table = residual_table(records, title="ledger")
        assert "sparsest" in table and "MNC" in table


# ----------------------------------------------------------------------
# Producers: sparsest runner, verify engine, runtime allocator
# ----------------------------------------------------------------------

class TestResidualProducers:
    def test_sparsest_runner_records_residuals(self):
        from repro.sparsest.runner import execute_outcomes, requests_for

        execute_outcomes(requests_for(["B1.1"], ["mnc"], scale=0.05))
        residuals = [
            r for r in METRICS.residuals() if r.source == "sparsest"
        ]
        assert residuals
        assert all(r.estimator == "MNC" for r in residuals)
        assert all(r.op == "dag" for r in residuals)
        snapshot = metrics_snapshot()
        assert snapshot.counters.get("sparsest.outcomes.ok", 0) >= 1

    def test_verify_engine_records_residuals(self):
        from repro.verify.engine import FuzzEngine

        FuzzEngine(budget=2, seed=0, cell_patterns=["mnc:*:*"]).run()
        residuals = [r for r in METRICS.residuals() if r.source == "verify"]
        assert residuals
        assert all("#" in r.workload for r in residuals)

    def test_allocator_records_regret_and_residual(self):
        from repro.runtime.allocator import plan_allocation

        plan_allocation("node", (100, 100), 900.0, 500.0, estimator="MNC")
        snapshot = metrics_snapshot()
        assert snapshot.counters["runtime.allocations"] == 1.0
        assert "runtime.regret_bytes" in snapshot.histograms
        residuals = [
            r for r in METRICS.residuals() if r.source == "allocator"
        ]
        assert len(residuals) == 1
        assert residuals[0].op == "alloc"
        assert residuals[0].estimator == "MNC"


# ----------------------------------------------------------------------
# Schema versioning + JSONL round-trip
# ----------------------------------------------------------------------

class TestSerialization:
    def test_snapshot_roundtrips_through_dict(self):
        metric_inc("rt.counter", 3)
        metric_set("rt.gauge", 9)
        metric_observe("rt.hist", 2.5)
        snapshot = metrics_snapshot()
        decoded = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert decoded.version == METRICS_SCHEMA_VERSION
        assert decoded.counters == snapshot.counters
        assert decoded.gauges == snapshot.gauges
        assert decoded.histograms == {
            name: _Histogram.from_state(state).state()
            for name, state in snapshot.histograms.items()
        }

    def test_future_schema_version_rejected(self):
        payload = MetricsSnapshot().to_dict()
        payload["schema"] = METRICS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="future"):
            MetricsSnapshot.from_dict(payload)

    def test_jsonl_roundtrip_with_residuals(self, tmp_path):
        metric_inc("file.counter", 7)
        record_residual(
            source="test", estimator="E", workload="w", op="matmul",
            estimate=4.0, truth=8.0, seconds=0.25,
        )
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(path, metrics_snapshot())
        decoded = read_metrics_jsonl(path)
        assert decoded.counters["file.counter"] == 7.0
        assert len(decoded.residuals) == 1
        restored = decoded.residuals[0]
        assert restored.relative_error == pytest.approx(2.0)
        assert restored.seconds == pytest.approx(0.25)

    def test_read_metrics_jsonl_requires_metrics_record(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "counter", "name": "x", "value": 1}\n')
        with pytest.raises(ValueError, match="no metrics record"):
            read_metrics_jsonl(path)

    def test_write_trace_embeds_metrics(self, tmp_path):
        metric_inc("traced.counter")
        collector = RecordingCollector()
        with using_collector(collector):
            count("span.counter")
        path = tmp_path / "trace.jsonl"
        write_trace(path, collector, metrics=metrics_snapshot())
        data = read_trace(path)
        assert data.metrics is not None
        assert data.metrics.counters["traced.counter"] == 1.0
        assert data.counters["span.counter"] == 1.0


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

#: Every non-comment exposition line: name{labels} value
_PROM_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (\+Inf|-Inf|NaN|-?[0-9.e+-]+)$"
)


class TestPrometheus:
    def test_every_line_parses(self):
        metric_inc("prom.counter", 3)
        metric_set("prom.gauge", 1.5)
        metric_observe("prom.hist", 0.0)
        metric_observe("prom.hist", 12.0)
        record_residual(
            source="verify", estimator="Meta-AC", workload="w", op="matmul",
            estimate=3.0, truth=6.0, seconds=0.5,
        )
        exposition = prometheus_exposition(metrics_snapshot())
        assert exposition.endswith("\n")
        for line in exposition.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-zA-Z_][a-zA-Z0-9_]* \w+$", line)
            else:
                assert _PROM_LINE.match(line), f"unparseable line: {line!r}"

    def test_counters_get_total_suffix_and_prefix(self):
        metric_inc("some.counter")
        exposition = prometheus_exposition(metrics_snapshot())
        assert "repro_some_counter_total 1" in exposition

    def test_histogram_buckets_are_cumulative(self):
        metric_observe("h", 0.0)
        metric_observe("h", 3.0)   # bucket [2, 4) -> le="4"
        metric_observe("h", 3.5)
        exposition = prometheus_exposition(metrics_snapshot())
        assert 'repro_h_bucket{le="0"} 1' in exposition
        assert 'repro_h_bucket{le="4"} 3' in exposition
        assert 'repro_h_bucket{le="+Inf"} 3' in exposition
        assert "repro_h_count 3" in exposition

    def test_residual_ledger_exported_with_labels(self):
        record_residual(
            source="sparsest", estimator="MNC", workload="B1.1", op="dag",
            estimate=10.0, truth=20.0, seconds=0.125,
        )
        exposition = prometheus_exposition(metrics_snapshot())
        assert (
            'repro_residual_ledger_count{source="sparsest",estimator="MNC"} 1'
            in exposition
        )
        assert (
            'repro_residual_ledger_error_mean'
            '{source="sparsest",estimator="MNC"} 2'
            in exposition
        )


# ----------------------------------------------------------------------
# Exception-safe spans (satellite: timed_span error flag)
# ----------------------------------------------------------------------

class TestExceptionSafeSpans:
    def test_timed_span_records_error_flag_untraced(self):
        span = timed_span("boom.op")
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("kaboom")
        # The span body raised, yet the span was still timed and flagged.
        assert span.seconds is not None and span.seconds >= 0.0
        assert span.attrs["error"] == "RuntimeError"
        kinds = [e["kind"] for e in FLIGHT.events()]
        assert "span_error" in kinds

    def test_traced_error_span_reaches_collector(self):
        collector = RecordingCollector()
        with pytest.raises(ValueError):
            with using_collector(collector):
                with timed_span("traced.boom"):
                    raise ValueError("nope")
        assert len(collector.spans) == 1
        recorded = collector.spans[0]
        assert recorded.name == "traced.boom"
        assert recorded.attrs["error"] == "ValueError"
        assert recorded.seconds is not None

    def test_error_span_triggers_armed_dump(self, tmp_path):
        dump = tmp_path / "postmortem.json"
        FLIGHT.arm(dump)
        with pytest.raises(RuntimeError):
            with timed_span("armed.boom"):
                raise RuntimeError("dump me")
        assert dump.exists()
        report = json.loads(dump.read_text())
        assert report["trigger"] == "span_error"
        assert report["context"]["span"] == "armed.boom"
        assert report["metrics"]["schema"] == METRICS_SCHEMA_VERSION

    def test_successful_span_does_not_dump(self, tmp_path):
        dump = tmp_path / "postmortem.json"
        FLIGHT.arm(dump)
        with timed_span("fine.op"):
            pass
        assert not dump.exists()


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded(self):
        from repro.observability import FlightRecorder

        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record("metric", f"m{index}")
        events = recorder.events()
        assert len(events) == 3
        assert [e["name"] for e in events] == ["m7", "m8", "m9"]

    def test_unarmed_trigger_still_counts(self):
        FLIGHT.trigger_dump("unit_test")
        snapshot = metrics_snapshot()
        assert snapshot.counters["flight.trigger.unit_test"] == 1.0

    def test_estimator_exception_dumps_postmortem(self, tmp_path):
        from repro.estimators.base import SparsityEstimator, Synopsis
        from repro.opcodes import Op

        class _BoomSynopsis(Synopsis):
            @property
            def shape(self):
                return (2, 2)

            @property
            def nnz_estimate(self):
                return 1.0

        class _BoomEstimator(SparsityEstimator):
            name = "Boom"

            def build(self, matrix):
                return _BoomSynopsis()

            def _estimate_matmul(self, *operands, **params):
                raise ZeroDivisionError("synthetic crash")

        dump = tmp_path / "crash.json"
        FLIGHT.arm(dump)
        estimator = _BoomEstimator()
        operands = [_BoomSynopsis(), _BoomSynopsis()]
        with pytest.raises(ZeroDivisionError):
            estimator.estimate_nnz(Op.MATMUL, operands)
        assert dump.exists()
        report = json.loads(dump.read_text())
        assert report["trigger"] == "estimator_exception"
        assert report["context"]["estimator"] == "Boom"
        assert report["context"]["op"] == "matmul"
        assert (
            metrics_snapshot().counters["estimator.exceptions.Boom"] == 1.0
        )

    def test_unsupported_operation_is_not_a_crash(self):
        from repro.errors import UnsupportedOperationError
        from repro.estimators import make_estimator
        from repro.opcodes import Op

        from repro.estimators import available_estimators

        estimator, unsupported = next(
            (candidate, op)
            for candidate in map(make_estimator, available_estimators())
            for op in Op
            if op is not Op.LEAF and not candidate.supports(op)
        )
        with pytest.raises(UnsupportedOperationError):
            estimator.estimate_nnz(unsupported, [])
        assert f"estimator.exceptions.{estimator.name}" not in (
            metrics_snapshot().counters
        )


# ----------------------------------------------------------------------
# Flush durability (satellite: atexit + explicit flush)
# ----------------------------------------------------------------------

class TestFlush:
    def test_explicit_flush_to_file(self, tmp_path):
        from repro.observability import flush

        metric_inc("flush.counter", 2)
        target = tmp_path / "dump.jsonl"
        written = flush(target)
        assert written == target
        assert read_metrics_jsonl(target).counters["flush.counter"] == 2.0

    def test_flush_to_directory_is_per_pid(self, tmp_path):
        from repro.observability import flush

        metric_inc("flush.dir")
        written = flush(tmp_path)
        assert written == tmp_path / f"metrics-{os.getpid()}.jsonl"
        assert written.exists()

    def test_flush_without_destination_is_noop(self, monkeypatch):
        from repro.observability import flush
        from repro.observability.metrics import METRICS_DUMP_ENV

        monkeypatch.delenv(METRICS_DUMP_ENV, raising=False)
        assert flush() is None

    def test_atexit_flush_survives_mid_run_exit(self, tmp_path):
        # A worker that dies via sys.exit mid-run must still leave its
        # counters on disk thanks to the atexit-registered flush.
        target = tmp_path / "exit-dump.jsonl"
        script = (
            "import sys\n"
            "from repro.observability import metric_inc, record_residual\n"
            "metric_inc('subprocess.counter', 5)\n"
            "record_residual(source='sub', estimator='E', workload='w',\n"
            "                op='matmul', estimate=2.0, truth=4.0)\n"
            "sys.exit(3)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_METRICS_DUMP"] = str(target)
        result = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 3
        snapshot = read_metrics_jsonl(target)
        assert snapshot.counters["subprocess.counter"] == 5.0
        assert snapshot.counters["residual.count.sub.E"] == 1.0
        assert len(snapshot.residuals) == 1


# ----------------------------------------------------------------------
# Multi-file stats CLI (satellite: merge several trace/metric files)
# ----------------------------------------------------------------------

class TestStatsCli:
    def _write_snapshot(self, path, counter, value):
        registry = MetricsRegistry()
        registry.inc(counter, value)
        write_metrics_jsonl(path, registry.snapshot(sync_hotpath=False))

    def test_merges_multiple_files(self, tmp_path, capsys):
        from repro.cli import main

        one, two = tmp_path / "one.jsonl", tmp_path / "two.jsonl"
        self._write_snapshot(one, "shared.counter", 2)
        self._write_snapshot(two, "shared.counter", 3)
        assert main(["stats", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "shared.counter = 5" in out

    def test_format_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "metrics.jsonl"
        self._write_snapshot(path, "json.counter", 4)
        assert main(["stats", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["json.counter"] == 4.0

    def test_prometheus_output_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "metrics.jsonl"
        prom = tmp_path / "prom.txt"
        self._write_snapshot(path, "prom.cli.counter", 1)
        assert main(["stats", str(path), "--prometheus", str(prom)]) == 0
        assert "repro_prom_cli_counter_total 1" in prom.read_text()

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2

    def test_merge_trace_data_combines_residuals(self, tmp_path):
        paths = []
        for index in range(2):
            registry = MetricsRegistry()
            registry.record_residual(ResidualRecord(
                "s", "e", f"w{index}", "op", 1, 1, 1.0,
            ))
            registry.inc("m", 1)
            path = tmp_path / f"part{index}.jsonl"
            write_metrics_jsonl(path, registry.snapshot(sync_hotpath=False))
            paths.append(path)
        data = merge_trace_data([read_trace(p) for p in paths])
        assert data.metrics.counters["m"] == 2.0
        assert sorted(r.workload for r in data.residuals) == ["w0", "w1"]
