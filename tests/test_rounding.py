"""Unit tests for probabilistic rounding."""

import numpy as np

from repro.core.rounding import probabilistic_round, resolve_rng


class TestResolveRng:
    def test_passthrough_generator(self):
        generator = np.random.default_rng(1)
        assert resolve_rng(generator) is generator

    def test_int_seed_deterministic(self):
        a = resolve_rng(42).random(5)
        b = resolve_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)


class TestProbabilisticRound:
    def test_integers_unchanged(self, rng):
        values = np.array([0.0, 1.0, 5.0, 100.0])
        np.testing.assert_array_equal(
            probabilistic_round(values, rng=rng), [0, 1, 5, 100]
        )

    def test_unbiased_expectation(self):
        values = np.full(20_000, 0.4)
        rounded = probabilistic_round(values, rng=np.random.default_rng(7))
        assert 0.38 < rounded.mean() < 0.42

    def test_not_all_zero_for_fractions(self):
        # The motivating failure of deterministic rounding: 0.4 -> 0.
        values = np.full(100, 0.4)
        rounded = probabilistic_round(values, rng=np.random.default_rng(8))
        assert rounded.sum() > 0

    def test_negative_clamped(self, rng):
        rounded = probabilistic_round(np.array([-0.5, -2.0]), rng=rng)
        np.testing.assert_array_equal(rounded, [0, 0])

    def test_maximum_cap(self, rng):
        rounded = probabilistic_round(np.array([9.9, 3.2]), rng=rng, maximum=5)
        assert rounded.max() <= 5

    def test_output_dtype(self, rng):
        assert probabilistic_round(np.array([1.5]), rng=rng).dtype == np.int64

    def test_values_within_one_of_input(self, rng):
        values = np.array([0.1, 2.7, 3.999])
        rounded = probabilistic_round(values, rng=rng)
        assert np.all(np.abs(rounded - values) < 1.0)
