"""Tests for sketch serialization and repeated-run aggregation."""

import numpy as np
import pytest

from repro.core.serialize import (
    load_sketch,
    save_sketch,
    sketch_from_arrays,
    sketch_to_arrays,
)
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.matrix.random import diagonal_matrix, random_sparse


class TestRoundTrip:
    def test_full_sketch(self, tmp_path):
        sketch = MNCSketch.from_matrix(random_sparse(40, 30, 0.2, seed=1))
        path = tmp_path / "sketch.npz"
        save_sketch(path, sketch)
        loaded = load_sketch(path)
        assert loaded.shape == sketch.shape
        np.testing.assert_array_equal(loaded.hr, sketch.hr)
        np.testing.assert_array_equal(loaded.hc, sketch.hc)
        np.testing.assert_array_equal(loaded.her, sketch.her)
        np.testing.assert_array_equal(loaded.hec, sketch.hec)
        assert loaded.exact == sketch.exact

    def test_sketch_without_extensions(self, tmp_path):
        sketch = MNCSketch.from_matrix(np.eye(5))
        path = tmp_path / "sketch.npz"
        save_sketch(path, sketch)
        loaded = load_sketch(path)
        assert loaded.her is None
        assert loaded.hec is None

    def test_diagonal_flag_preserved(self, tmp_path):
        sketch = MNCSketch.from_matrix(diagonal_matrix(8, seed=2))
        path = tmp_path / "sketch.npz"
        save_sketch(path, sketch)
        assert load_sketch(path).fully_diagonal

    def test_estimates_identical_after_roundtrip(self, tmp_path):
        from repro.core.estimate import estimate_product_nnz

        a = MNCSketch.from_matrix(random_sparse(30, 20, 0.3, seed=3))
        b = MNCSketch.from_matrix(random_sparse(20, 25, 0.3, seed=4))
        save_sketch(tmp_path / "a.npz", a)
        save_sketch(tmp_path / "b.npz", b)
        direct = estimate_product_nnz(a, b)
        loaded = estimate_product_nnz(
            load_sketch(tmp_path / "a.npz"), load_sketch(tmp_path / "b.npz")
        )
        assert loaded == direct

    def test_creates_parent_dirs(self, tmp_path):
        sketch = MNCSketch.from_matrix(np.eye(3))
        path = tmp_path / "deep" / "dir" / "sketch.npz"
        save_sketch(path, sketch)
        assert path.exists()


class TestValidation:
    def test_missing_field_rejected(self):
        with pytest.raises(SketchError):
            sketch_from_arrays({"version": np.array([1])})

    def test_wrong_version_rejected(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        arrays = sketch_to_arrays(sketch)
        arrays["version"] = np.array([99])
        with pytest.raises(SketchError):
            sketch_from_arrays(arrays)

    def test_future_version_rejected_with_clear_message(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        arrays = sketch_to_arrays(sketch)
        arrays["version"] = np.array([2])
        with pytest.raises(SketchError, match="version 2 is newer"):
            sketch_from_arrays(arrays)

    def test_future_version_checked_before_fields(self):
        # A future format may have renamed fields entirely; the version
        # error must win over any "missing field" complaint.
        with pytest.raises(SketchError, match="newer than this build"):
            sketch_from_arrays({"version": np.array([3])})

    def test_future_version_rejected_on_load(self, tmp_path):
        sketch = MNCSketch.from_matrix(random_sparse(10, 8, 0.3, seed=5))
        arrays = sketch_to_arrays(sketch)
        arrays["version"] = np.array([2])
        path = tmp_path / "future.npz"
        np.savez(path, **arrays)
        with pytest.raises(SketchError, match="newer"):
            load_sketch(path)

    def test_missing_version_field_rejected(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        arrays = sketch_to_arrays(sketch)
        del arrays["version"]
        with pytest.raises(SketchError, match="missing field 'version'"):
            sketch_from_arrays(arrays)

    def test_corrupt_counts_rejected(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        arrays = sketch_to_arrays(sketch)
        arrays["hr"] = np.array([99, 0, 0])  # exceeds n -> invariant violation
        with pytest.raises(SketchError):
            sketch_from_arrays(arrays)


class TestRunRepeated:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))

    def test_aggregates_over_seeds(self):
        from repro.estimators import make_estimator
        from repro.sparsest import get_use_case
        from repro.sparsest.runner import run_repeated

        outcome = run_repeated(
            get_use_case("B1.2"), make_estimator("mnc"),
            repetitions=3, scale=0.02,
        )
        assert outcome.ok
        assert outcome.relative_error == pytest.approx(1.0)
        assert outcome.seconds > 0

    def test_unsupported_short_circuits(self):
        from repro.estimators import make_estimator
        from repro.sparsest import get_use_case
        from repro.sparsest.runner import run_repeated

        outcome = run_repeated(
            get_use_case("B2.5"), make_estimator("layered_graph"),
            repetitions=3, scale=0.02,
        )
        assert outcome.status == "unsupported"

    def test_invalid_repetitions(self):
        from repro.estimators import make_estimator
        from repro.sparsest import get_use_case
        from repro.sparsest.runner import run_repeated

        with pytest.raises(ValueError):
            run_repeated(get_use_case("B1.2"), make_estimator("mnc"), repetitions=0)
