"""Tests for the chain estimation utilities."""

import numpy as np
import pytest

from repro.core.chain import (
    chain_sketches,
    estimate_all_subchains,
    estimate_chain_nnz,
    estimate_chain_sparsity,
)
from repro.errors import ShapeError
from repro.matrix.ops import matmul
from repro.matrix.random import diagonal_matrix, random_sparse, single_nnz_per_row


def _chain(seeds, dims, sparsities):
    return [
        random_sparse(m, n, s, seed=seed)
        for seed, (m, n), s in zip(seeds, zip(dims, dims[1:]), sparsities)
    ]


class TestChainEstimate:
    def test_single_matrix(self):
        matrix = random_sparse(10, 8, 0.3, seed=1)
        sketches = chain_sketches([matrix])
        assert estimate_chain_nnz(sketches) == matrix.nnz

    def test_two_matrix_chain_matches_product_estimate(self):
        from repro.core.estimate import estimate_product_nnz

        a = random_sparse(30, 20, 0.2, seed=2)
        b = random_sparse(20, 25, 0.2, seed=3)
        sketches = chain_sketches([a, b])
        assert estimate_chain_nnz(sketches) == estimate_product_nnz(*sketches)

    def test_three_matrix_chain_close_to_truth(self):
        matrices = _chain([4, 5, 6], [100, 80, 90, 70], [0.08, 0.08, 0.08])
        truth = matmul(matmul(matrices[0], matrices[1]), matrices[2]).nnz
        estimate = estimate_chain_nnz(chain_sketches(matrices), rng=7)
        assert truth / 1.5 <= estimate <= truth * 1.5

    def test_diagonal_chain_exact(self):
        d1 = diagonal_matrix(50, seed=8)
        x = random_sparse(50, 40, 0.2, seed=9)
        sketches = chain_sketches([d1, x])
        assert estimate_chain_nnz(sketches, rng=10) == x.nnz

    def test_sparsity_wrapper(self):
        matrices = _chain([11, 12], [20, 30, 25], [0.3, 0.3])
        sketches = chain_sketches(matrices)
        nnz = estimate_chain_nnz(sketches, rng=13)
        sparsity = estimate_chain_sparsity(sketches, rng=13)
        assert sparsity == pytest.approx(nnz / (20 * 25), rel=0.2)

    def test_shape_mismatch_rejected(self):
        a = random_sparse(5, 6, 0.5, seed=14)
        b = random_sparse(7, 5, 0.5, seed=15)
        with pytest.raises(ShapeError):
            estimate_chain_nnz(chain_sketches([a, b]))

    def test_empty_chain_rejected(self):
        with pytest.raises(ShapeError):
            estimate_chain_nnz([])


class TestAllSubchains:
    def test_covers_all_pairs(self):
        matrices = _chain([16, 17, 18, 19], [20, 25, 30, 22, 18],
                          [0.2, 0.2, 0.2, 0.2])
        estimates = estimate_all_subchains(chain_sketches(matrices), rng=20)
        expected_keys = {(i, j) for i in range(4) for j in range(i + 1, 4)}
        assert set(estimates) == expected_keys

    def test_matches_truth_on_structured_chain(self):
        # Permutation-like chains keep every subchain exactly estimable.
        p = single_nnz_per_row(40, 40, seed=21)
        q = single_nnz_per_row(40, 40, seed=22)
        x = random_sparse(40, 30, 0.2, seed=23)
        sketches = chain_sketches([p, q, x])
        estimates = estimate_all_subchains(sketches, rng=24)
        assert estimates[(0, 1)] == matmul(p, q).nnz
        truth_full = matmul(matmul(p, q), x).nnz
        assert estimates[(0, 2)] == pytest.approx(truth_full, rel=0.25)

    def test_single_products_match_direct_estimates(self):
        from repro.core.estimate import estimate_product_nnz

        matrices = _chain([25, 26, 27], [15, 20, 25, 30], [0.3, 0.3, 0.3])
        sketches = chain_sketches(matrices)
        estimates = estimate_all_subchains(sketches, rng=28)
        for i in range(2):
            direct = estimate_product_nnz(sketches[i], sketches[i + 1])
            assert estimates[(i, i + 1)] == direct

    def test_basic_sketches_supported(self):
        matrices = _chain([29, 30], [10, 12, 14], [0.4, 0.4])
        sketches = chain_sketches(matrices, with_extensions=False)
        assert all(not sketch.has_extensions for sketch in sketches)
        estimates = estimate_all_subchains(sketches, rng=31)
        assert (0, 1) in estimates
