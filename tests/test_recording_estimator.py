"""Tests for the RecordingEstimator telemetry proxy."""

import pytest

from repro.estimators import BitsetEstimator, make_estimator
from repro.ir import leaf, matmul
from repro.ir.estimate import estimate_root_nnz
from repro.matrix.random import random_sparse
from repro.observability import (
    RecordingCollector,
    RecordingEstimator,
    unwrap_estimator,
    using_collector,
)
from repro.opcodes import Op
from repro.sparsest.runner import run_use_case
from repro.sparsest.usecases import get_use_case


@pytest.fixture
def matrices():
    return (
        random_sparse(60, 40, 0.1, seed=1),
        random_sparse(40, 50, 0.15, seed=2),
    )


class TestTransparency:
    @pytest.mark.parametrize("name", ["mnc", "meta_ac", "density_map"])
    def test_identical_product_estimates(self, name, matrices):
        a, b = matrices
        plain = make_estimator(name)
        wrapped = RecordingEstimator(make_estimator(name))
        plain_nnz = plain.estimate_nnz(
            Op.MATMUL, [plain.build(a), plain.build(b)]
        )
        wrapped_nnz = wrapped.estimate_nnz(
            Op.MATMUL, [wrapped.build(a), wrapped.build(b)]
        )
        assert wrapped_nnz == plain_nnz

    def test_identical_dag_estimates(self, matrices):
        a, b = matrices
        root = matmul(leaf(a, "A"), leaf(b, "B"))
        plain = estimate_root_nnz(root, make_estimator("mnc"))
        wrapped = estimate_root_nnz(
            root, RecordingEstimator(make_estimator("mnc"))
        )
        assert wrapped == plain

    def test_name_and_knobs_delegate(self):
        wrapped = RecordingEstimator(make_estimator("density_map", block_size=64))
        assert wrapped.name == "DMap"
        assert wrapped.block_size == 64

    def test_supports_delegates(self):
        wrapped = RecordingEstimator(make_estimator("layered_graph"))
        assert wrapped.supports(Op.MATMUL)
        assert not wrapped.supports(Op.EWISE_MULT)
        assert not wrapped.supports_propagation(Op.EWISE_ADD)

    def test_proxies_do_not_stack(self):
        inner = make_estimator("mnc")
        double = RecordingEstimator(RecordingEstimator(inner))
        assert double.inner is inner

    def test_unwrap(self):
        inner = make_estimator("bitset")
        wrapped = RecordingEstimator(inner)
        assert unwrap_estimator(wrapped) is inner
        assert unwrap_estimator(inner) is inner
        assert isinstance(unwrap_estimator(wrapped), BitsetEstimator)

    def test_usable_in_sparsest_runner(self):
        wrapped = RecordingEstimator(make_estimator("mnc"))
        outcome = run_use_case(get_use_case("B1.1"), wrapped, scale=0.02)
        assert outcome.ok
        assert outcome.estimator == "MNC"
        assert any(call.method == "build" for call in wrapped.calls)


class TestCallLog:
    def test_records_build_estimate_propagate(self, matrices):
        a, b = matrices
        wrapped = RecordingEstimator(make_estimator("mnc"))
        sa, sb = wrapped.build(a), wrapped.build(b)
        nnz = wrapped.estimate_nnz(Op.MATMUL, [sa, sb])
        wrapped.propagate(Op.MATMUL, [sa, sb])

        methods = [call.method for call in wrapped.calls]
        assert methods == ["build", "build", "estimate_nnz", "propagate"]

        build = wrapped.calls[0]
        assert build.operand_shapes == ((60, 40),)
        assert build.operand_nnz == (float(a.nnz),)
        assert build.seconds >= 0.0

        estimate = wrapped.calls[2]
        assert estimate.op == "matmul"
        assert estimate.operand_shapes == ((60, 40), (40, 50))
        assert estimate.result_nnz == pytest.approx(nnz)

    def test_emits_spans_to_active_collector(self, matrices):
        a, b = matrices
        wrapped = RecordingEstimator(make_estimator("mnc"))
        with using_collector(RecordingCollector()) as collector:
            sa, sb = wrapped.build(a), wrapped.build(b)
            wrapped.estimate_nnz(Op.MATMUL, [sa, sb])
            wrapped.propagate(Op.MATMUL, [sa, sb])
        names = {span.name for span in collector.spans}
        assert {"estimator.build", "estimator.estimate",
                "estimator.propagate"} <= names
        build_span = next(
            s for s in collector.spans if s.name == "estimator.build"
        )
        assert build_span.attrs["estimator"] == "MNC"
        assert build_span.attrs["shape"] == (60, 40)

    def test_no_spans_without_collector(self, matrices):
        a, _ = matrices
        wrapped = RecordingEstimator(make_estimator("mnc"))
        wrapped.build(a)  # still logs the call ...
        assert len(wrapped.calls) == 1
        assert wrapped.calls[0].seconds >= 0.0  # ... with real timing
