"""Unit tests for the synthetic dataset stand-ins."""

import numpy as np
import pytest

from repro.matrix.properties import col_nnz, row_nnz, sparsity
from repro.sparsest import datasets


class TestAminerAbstracts:
    def test_single_nnz_per_row(self):
        matrix = datasets.aminer_abstracts(rows=500, vocab=200, seed=1)
        np.testing.assert_array_equal(row_nnz(matrix), np.ones(500))

    def test_unknown_column_share(self):
        matrix = datasets.aminer_abstracts(
            rows=2000, vocab=100, unknown_fraction=0.5, seed=2
        )
        unknown_count = col_nnz(matrix)[-1]
        assert 800 < unknown_count < 1200

    def test_power_law_head(self):
        matrix = datasets.aminer_abstracts(rows=5000, vocab=500, seed=3)
        counts = col_nnz(matrix)[:-1]
        assert counts[0] > counts[200]


class TestGraphs:
    def test_aminer_references_shape_and_degree(self):
        graph = datasets.aminer_references(nodes=1000, average_degree=4.0, seed=4)
        assert graph.shape == (1000, 1000)
        assert 2.0 < graph.nnz / 1000 <= 4.0  # duplicates collapse

    def test_aminer_in_degrees_skewed(self):
        graph = datasets.aminer_references(nodes=2000, seed=5)
        in_degrees = col_nnz(graph)
        assert in_degrees.max() > 10 * max(np.median(in_degrees), 1)

    def test_email_graph_sparse(self):
        graph = datasets.email_graph(nodes=1000, edges=1500, seed=6)
        assert graph.shape == (1000, 1000)
        assert sparsity(graph) < 0.01


class TestAmazon:
    def test_ultra_sparse(self):
        ratings = datasets.amazon_ratings(users=2000, items=800, seed=7)
        assert sparsity(ratings) < 0.01

    def test_item_popularity_skewed(self):
        ratings = datasets.amazon_ratings(users=5000, items=500, seed=8)
        popularity = np.sort(col_nnz(ratings))[::-1]
        assert popularity[0] > 5 * max(popularity[250], 1)


class TestCovtype:
    def test_shape_and_sparsity(self):
        matrix = datasets.covtype(rows=2000, seed=9)
        assert matrix.shape == (2000, 54)
        assert 0.2 < sparsity(matrix) < 0.25  # 12 of 54 columns per row

    def test_dense_quantitative_columns(self):
        matrix = datasets.covtype(rows=1000, seed=10)
        counts = col_nnz(matrix)
        np.testing.assert_array_equal(counts[:10], np.full(10, 1000))

    def test_one_hot_groups_partition_rows(self):
        matrix = datasets.covtype(rows=1000, seed=11)
        counts = col_nnz(matrix)
        assert counts[10:14].sum() == 1000  # wilderness one-hot
        assert counts[14:].sum() == 1000  # soil one-hot

    def test_varying_column_sparsity(self):
        matrix = datasets.covtype(rows=5000, seed=12)
        counts = col_nnz(matrix)[14:]
        assert counts.max() > 10 * max(counts.min(), 1)


class TestMnistLike:
    def test_shape(self):
        matrix = datasets.mnist_like(rows=500, seed=13)
        assert matrix.shape == (500, 784)

    def test_target_sparsity(self):
        matrix = datasets.mnist_like(rows=2000, seed=14)
        assert 0.2 < sparsity(matrix) < 0.3

    def test_center_concentration(self):
        matrix = datasets.mnist_like(rows=2000, seed=15)
        counts = col_nnz(matrix).reshape(28, 28)
        center_mass = counts[7:21, 7:21].mean()
        border_mass = counts[:3, :].mean()
        assert center_mass > 3 * max(border_mass, 1)


class TestCenterMask:
    def test_mask_structure(self):
        mask = datasets.center_mask(10)
        assert mask.shape == (10, 784)
        assert mask.nnz == 10 * 14 * 14

    def test_mask_covers_center_pixels(self):
        mask = datasets.center_mask(1).toarray().reshape(28, 28)
        assert mask[14, 14] == 1
        assert mask[0, 0] == 0
        assert mask[7, 7] == 1
        assert mask[6, 6] == 0

    def test_custom_inner_size(self):
        mask = datasets.center_mask(5, side=10, inner=4)
        assert mask.nnz == 5 * 16


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: datasets.aminer_abstracts(rows=100, vocab=50, seed=s),
            lambda s: datasets.aminer_references(nodes=100, seed=s),
            lambda s: datasets.amazon_ratings(users=100, items=50, seed=s),
            lambda s: datasets.covtype(rows=100, seed=s),
            lambda s: datasets.email_graph(nodes=100, edges=150, seed=s),
            lambda s: datasets.mnist_like(rows=50, seed=s),
        ],
    )
    def test_seeded_reproducibility(self, factory):
        a, b = factory(42), factory(42)
        assert (a != b).nnz == 0
