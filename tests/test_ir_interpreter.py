"""Unit tests for ground-truth DAG evaluation."""

import numpy as np

from conftest import assert_structure_equal
from repro.ir.interpreter import evaluate, evaluate_all
from repro.ir.nodes import diag, eq_zero, leaf, neq_zero, rbind
from repro.matrix import ops as mops
from repro.matrix.random import random_sparse


class TestEvaluate:
    def test_leaf(self):
        matrix = random_sparse(5, 6, 0.4, seed=1)
        assert_structure_equal(evaluate(leaf(matrix)), matrix)

    def test_product(self):
        a = random_sparse(6, 5, 0.4, seed=2)
        b = random_sparse(5, 7, 0.4, seed=3)
        root = leaf(a) @ leaf(b)
        assert_structure_equal(evaluate(root), mops.matmul(a, b))

    def test_mixed_expression(self):
        x = random_sparse(6, 6, 0.4, seed=4)
        y = random_sparse(6, 6, 0.4, seed=5)
        root = (leaf(x) @ leaf(y)).T * neq_zero(leaf(x))
        expected = mops.ewise_mult(
            mops.transpose(mops.matmul(x, y)), mops.not_equals_zero(x)
        )
        assert_structure_equal(evaluate(root), expected)

    def test_reshape_and_binds(self):
        a = random_sparse(4, 6, 0.5, seed=6)
        b = random_sparse(2, 6, 0.5, seed=7)
        root = rbind(leaf(a), leaf(b)).reshape(9, 4)
        expected = mops.reshape_rowwise(mops.rbind(a, b), 9, 4)
        assert_structure_equal(evaluate(root), expected)

    def test_diag_and_complement(self):
        v = np.array([[1.0], [0.0], [2.0]])
        root = eq_zero(diag(leaf(v)))
        expected = mops.equals_zero(mops.diag_matrix(v))
        assert_structure_equal(evaluate(root), expected)


class TestMemoization:
    def test_shared_subexpression_evaluated_once(self):
        x = leaf(random_sparse(10, 10, 0.3, seed=8), name="x")
        shared = x @ x
        root = shared + shared
        results = evaluate_all(root)
        # Every distinct node appears exactly once in the result map.
        assert len(results) == 3  # x, shared, root

    def test_all_nodes_present(self):
        a = leaf(random_sparse(4, 4, 0.5, seed=9))
        root = (a @ a).T
        results = evaluate_all(root)
        for node in root.postorder():
            assert id(node) in results

    def test_union_of_identical_structures_is_identity(self):
        x = leaf(random_sparse(8, 8, 0.4, seed=10))
        root = x + x
        assert evaluate(root).nnz == x.matrix.nnz
