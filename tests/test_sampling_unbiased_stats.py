"""Statistical test of the unbiased sampling estimator (Appendix A, Eq 16).

Runs hundreds of independently-seeded trials on a fixed power-law product
pair and asserts the trial mean lands inside a confidence band around the
truth. Marked ``slow``: the default suite skips it; the CI fuzz job and
``pytest -m slow`` run it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.matrix.ops import matmul
from repro.matrix.random import power_law_columns
from repro.opcodes import Op

TRIALS = 240

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def power_law_pair():
    a = power_law_columns(120, 90, 1100, alpha=1.1, seed=11)
    b = power_law_columns(90, 100, 1000, alpha=1.1, seed=12)
    return a, b


def _trial_estimates(a, b, fraction: float) -> np.ndarray:
    estimates = np.empty(TRIALS)
    for trial in range(TRIALS):
        estimator = make_estimator(
            "sampling_unbiased", fraction=fraction, seed=1000 + trial
        )
        synopses = [estimator.build(a), estimator.build(b)]
        estimates[trial] = estimator.estimate_nnz(Op.MATMUL, synopses)
    return estimates


def _full_sample_estimate(a, b) -> float:
    estimator = make_estimator("sampling_unbiased", fraction=1.0, seed=0)
    synopses = [estimator.build(a), estimator.build(b)]
    return float(estimator.estimate_nnz(Op.MATMUL, synopses))


def test_trial_mean_within_confidence_band(power_law_pair):
    """Sampling is unbiased with respect to its own model: the mean over
    many sampled trials must track the full-information (every slice
    sampled) estimate. Eq 16's probabilistic-union model itself has real
    error on correlated power-law structure — that accuracy question is
    covered separately below and in the SparsEst harness.
    """
    a, b = power_law_pair
    reference = _full_sample_estimate(a, b)
    estimates = _trial_estimates(a, b, fraction=0.1)
    mean = float(estimates.mean())
    stderr = float(estimates.std(ddof=1) / np.sqrt(TRIALS))
    # 4 standard errors plus 5% slack for the nonlinear combiner's
    # small-sample (Jensen) bias, which vanishes as |S| -> n.
    band = 4.0 * stderr + 0.05 * reference
    assert abs(mean - reference) <= band, (
        f"mean {mean:.1f} of {TRIALS} trials strays from the full-sample "
        f"estimate {reference:.1f} by {abs(mean - reference):.1f} > band "
        f"{band:.1f} (stderr {stderr:.2f})"
    )


def test_model_estimate_tracks_truth(power_law_pair):
    """Loose accuracy sanity check of the Eq 16 model itself."""
    a, b = power_law_pair
    truth = float(matmul(a, b).nnz)
    reference = _full_sample_estimate(a, b)
    assert 0.5 * truth <= reference <= 2.0 * truth


def test_variance_shrinks_with_sample_fraction(power_law_pair):
    a, b = power_law_pair
    coarse = _trial_estimates(a, b, fraction=0.05)
    fine = _trial_estimates(a, b, fraction=0.5)
    assert fine.std(ddof=1) < coarse.std(ddof=1)


def test_estimates_stay_in_bounds(power_law_pair):
    a, b = power_law_pair
    estimates = _trial_estimates(a, b, fraction=0.1)
    cells = a.shape[0] * b.shape[1]
    assert np.all(estimates >= 0.0)
    assert np.all(estimates <= cells)
