"""Final coverage batch: chunk boundaries, interleaved empties, formulas."""

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import assert_structure_equal
from repro.estimators import make_estimator
from repro.estimators.bitset import _CHUNK_ROWS, pack_matrix
from repro.estimators.layered_graph import propagate_frontier
from repro.matrix import ops as mops
from repro.matrix.conversion import as_csc, as_csr
from repro.matrix.random import random_sparse
from repro.opcodes import Op


class TestBitsetChunkBoundaries:
    def test_matmul_across_row_chunks(self):
        # More rows than the unpack chunk: the kernel must stitch chunks.
        rows = _CHUNK_ROWS + 100
        a = random_sparse(rows, 50, 0.05, seed=1)
        b = random_sparse(50, 40, 0.2, seed=2)
        estimator = make_estimator("bitset")
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == mops.matmul(a, b).nnz

    def test_to_csr_across_chunks(self):
        rows = _CHUNK_ROWS + 37
        matrix = random_sparse(rows, 30, 0.1, seed=3)
        assert_structure_equal(pack_matrix(matrix).to_csr(), matrix)


class TestLayeredGraphInterleavedEmpties:
    def test_empty_columns_between_nonempty(self):
        # Columns 0 and 3 non-empty, 1 and 2 empty: the reduceat segments
        # must not bleed across the empty columns.
        structure = as_csc(np.array([
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 1],
        ]))
        frontier = np.array([[5.0], [1.0], [3.0]])
        result = propagate_frontier(frontier, structure)
        assert result[0, 0] == 3.0  # min(5, 3)
        assert np.isinf(result[1, 0])
        assert np.isinf(result[2, 0])
        assert result[3, 0] == 1.0  # min(1, 3)

    def test_trailing_empty_column(self):
        structure = as_csc(np.array([[1, 0], [1, 0]]))
        frontier = np.array([[2.0], [4.0]])
        result = propagate_frontier(frontier, structure)
        assert result[0, 0] == 2.0
        assert np.isinf(result[1, 0])


class TestMetadataClosedForms:
    @pytest.mark.parametrize("s_a,s_b,n", [(0.1, 0.2, 50), (0.01, 0.01, 500)])
    def test_meta_ac_eq1(self, s_a, s_b, n):
        from repro.estimators.metadata import MetaACEstimator

        value = MetaACEstimator()._product_sparsity(s_a, s_b, n)
        assert value == pytest.approx(1 - (1 - s_a * s_b) ** n, rel=1e-9)

    @pytest.mark.parametrize("s_a,s_b,n", [(0.1, 0.2, 50), (0.001, 0.5, 100)])
    def test_meta_wc_eq2(self, s_a, s_b, n):
        from repro.estimators.metadata import MetaWCEstimator

        value = MetaWCEstimator()._product_sparsity(s_a, s_b, n)
        assert value == pytest.approx(min(1, s_a * n) * min(1, s_b * n))

    def test_meta_ac_no_underflow_for_tiny_products(self):
        from repro.estimators.metadata import MetaACEstimator

        # Naive (1 - s)^n evaluation would lose the signal entirely.
        value = MetaACEstimator()._product_sparsity(1e-9, 1e-9, 10**6)
        assert value == pytest.approx(1e-12, rel=1e-3)


class TestSparseInputForms:
    def test_estimators_accept_csc_input(self):
        csc = sp.csc_array(np.eye(8))
        for name in ("mnc", "meta_ac", "bitset", "density_map"):
            estimator = make_estimator(name)
            synopsis = estimator.build(csc)
            assert synopsis.nnz_estimate == 8

    def test_estimators_accept_dense_input(self):
        dense = np.eye(8)
        for name in ("mnc", "quadtree_map", "layered_graph"):
            estimator = make_estimator(name)
            assert estimator.build(dense).nnz_estimate == 8


class TestIrWithAllEstimators:
    def test_leaf_root_estimation_every_estimator(self):
        from repro.ir import leaf
        from repro.ir.estimate import estimate_root_nnz

        matrix = random_sparse(20, 15, 0.3, seed=4)
        node = leaf(matrix)
        for name in ("mnc", "meta_ac", "meta_wc", "meta_ultrasparse",
                     "bitset", "density_map", "quadtree_map", "exact",
                     "sampling", "sampling_unbiased", "hash", "layered_graph"):
            estimator = make_estimator(name)
            assert estimate_root_nnz(node, estimator) == matrix.nnz, name


class TestReshapeSplitPath:
    def test_wide_to_tall_propagation_matches_truth_totals(self, rng):
        from repro.core.ops import propagate_reshape
        from repro.core.sketch import MNCSketch

        matrix = random_sparse(6, 24, 0.4, seed=5)
        sketch = MNCSketch.from_matrix(matrix)
        for rows, cols in ((12, 12), (24, 6), (72, 2)):
            result = propagate_reshape(sketch, rows, cols, rng=rng)
            truth = mops.reshape_rowwise(matrix, rows, cols)
            assert result.total_nnz == truth.nnz
