"""Unit tests for estimator-driven DAG sparsity estimation."""

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_dag, estimate_root_nnz, estimate_root_sparsity
from repro.ir.interpreter import evaluate
from repro.ir.nodes import leaf, neq_zero
from repro.matrix.random import random_sparse, single_nnz_per_row


class TestRootEstimation:
    def test_leaf_root(self):
        matrix = random_sparse(10, 8, 0.3, seed=1)
        estimator = make_estimator("mnc")
        assert estimate_root_nnz(leaf(matrix), estimator) == matrix.nnz

    def test_exact_oracle_matches_interpreter(self):
        a = random_sparse(18, 15, 0.2, seed=2)
        b = random_sparse(15, 18, 0.2, seed=3)
        c = random_sparse(18, 18, 0.3, seed=4)
        root = (leaf(a) @ leaf(b)) * neq_zero(leaf(c).T @ leaf(c))
        oracle = make_estimator("exact")
        assert estimate_root_nnz(root, oracle) == evaluate(root).nnz

    def test_mnc_exact_on_structured_chain(self):
        tokens = single_nnz_per_row(100, 30, seed=5)
        rng = np.random.default_rng(6)
        embeddings = rng.random((30, 8))
        root = (leaf(tokens) @ leaf(embeddings)).reshape(10, 80)
        estimator = make_estimator("mnc")
        assert estimate_root_nnz(root, estimator) == evaluate(root).nnz

    def test_sparsity_wrapper(self):
        a = random_sparse(10, 10, 0.4, seed=7)
        root = leaf(a) @ leaf(a)
        estimator = make_estimator("meta_ac")
        nnz = estimate_root_nnz(root, estimator)
        # Rebuild an identical DAG for the sparsity call; values must agree
        # because MetaAC is deterministic.
        assert estimate_root_sparsity(root, estimator) == pytest.approx(nnz / 100)

    def test_unsupported_propagates(self):
        a = random_sparse(10, 10, 0.4, seed=8)
        root = leaf(a) * leaf(a)
        with pytest.raises(UnsupportedOperationError):
            estimate_root_nnz(root, make_estimator("layered_graph"))


class TestEstimateDag:
    def test_returns_timing_and_sparsity(self):
        a = random_sparse(30, 25, 0.2, seed=9)
        b = random_sparse(25, 30, 0.2, seed=10)
        root = leaf(a) @ leaf(b)
        result = estimate_dag(root, make_estimator("mnc"))
        assert result["seconds"] >= 0
        assert result["sparsity"] == pytest.approx(result["nnz"] / 900)

    def test_intermediates_reported(self):
        a = random_sparse(20, 20, 0.3, seed=11)
        b = random_sparse(20, 20, 0.3, seed=12)
        node_a, node_b = leaf(a, "A"), leaf(b, "B")
        product = node_a @ node_b
        root = product.T
        result = estimate_dag(root, make_estimator("mnc"), include_intermediates=True)
        intermediates = result["intermediates"]
        assert id(product) in intermediates
        assert intermediates[id(node_a)].nnz == a.nnz
        assert intermediates[id(product)].shape == (20, 20)
        assert intermediates[id(root)].nnz == result["nnz"]

    def test_node_estimate_sparsity(self):
        a = random_sparse(10, 20, 0.25, seed=13)
        root = leaf(a).T
        result = estimate_dag(root, make_estimator("mnc"), include_intermediates=True)
        root_estimate = result["intermediates"][id(root)]
        assert root_estimate.sparsity == pytest.approx(a.nnz / 200)

    def test_shared_subdag_uses_one_synopsis(self):
        # A deterministic estimator on a shared sub-DAG must give the same
        # value along both paths — guaranteed by memoization.
        x = leaf(random_sparse(15, 15, 0.3, seed=14), name="x")
        shared = x @ x
        root = shared + shared
        estimator = make_estimator("mnc")
        nnz = estimate_root_nnz(root, estimator)
        # Union of a structure with itself has the same count as the
        # structure when the estimator sees aligned inputs.
        single = estimate_root_nnz(shared, make_estimator("mnc"))
        assert nnz <= 2 * single
