"""Tests for the EXPLAIN plan reports."""

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.ir import leaf, matmul, neq_zero, transpose
from repro.matrix.random import random_sparse, single_nnz_per_row
from repro.runtime import MatrixFormat, explain, explain_lines


@pytest.fixture
def nlp_dag():
    tokens = single_nnz_per_row(500, 100, seed=1)
    rng = np.random.default_rng(2)
    embeddings = rng.random((100, 16))
    return matmul(leaf(tokens, "X"), leaf(embeddings, "W"), name="XW")


class TestExplainLines:
    def test_one_line_per_node(self, nlp_dag):
        lines = explain_lines(nlp_dag, make_estimator("mnc"))
        assert len(lines) == 3  # X, W, XW

    def test_leaf_line_matches_matrix(self, nlp_dag):
        lines = explain_lines(nlp_dag, make_estimator("mnc"))
        by_label = {line.label: line for line in lines}
        x_line = by_label["X"]
        assert x_line.op == "leaf"
        assert x_line.shape == (500, 100)
        assert x_line.sparsity == pytest.approx(500 / (500 * 100))
        assert x_line.format is MatrixFormat.SPARSE

    def test_product_line_has_flops(self, nlp_dag):
        lines = explain_lines(nlp_dag, make_estimator("mnc"))
        product = [line for line in lines if line.op == "matmul"][0]
        assert product.flops is not None
        assert product.flops > 0

    def test_non_product_has_no_flops(self):
        root = neq_zero(leaf(random_sparse(10, 10, 0.3, seed=3)))
        lines = explain_lines(root, make_estimator("mnc"))
        assert all(line.flops is None for line in lines)

    def test_depths_root_zero(self, nlp_dag):
        lines = explain_lines(nlp_dag, make_estimator("mnc"))
        root_line = [line for line in lines if line.label == "XW"][0]
        leaf_lines = [line for line in lines if line.op == "leaf"]
        assert root_line.depth == 0
        assert all(line.depth == 1 for line in leaf_lines)

    def test_generic_estimator_flops_fallback(self, nlp_dag):
        lines = explain_lines(nlp_dag, make_estimator("meta_ac"))
        product = [line for line in lines if line.op == "matmul"][0]
        assert product.flops is not None

    def test_memory_positive(self, nlp_dag):
        for line in explain_lines(nlp_dag, make_estimator("mnc")):
            assert line.memory_bytes > 0


class TestExplainRendering:
    def test_contains_all_nodes(self, nlp_dag):
        text = explain(nlp_dag, make_estimator("mnc"))
        for label in ("XW", "X", "W"):
            assert label in text

    def test_header_names_estimator(self, nlp_dag):
        text = explain(nlp_dag, make_estimator("meta_wc"))
        assert "MetaWC" in text

    def test_indentation_reflects_depth(self):
        a = leaf(random_sparse(8, 8, 0.4, seed=4), "a")
        root = neq_zero(transpose(a), name="top")
        text = explain(root, make_estimator("mnc"))
        lines = text.splitlines()
        assert lines[1].startswith("top")
        assert lines[2].startswith("  ")
        assert lines[3].startswith("    a")
