"""Integration tests asserting the paper's qualitative claims end-to-end.

These run the full pipeline — dataset generation, DAG construction, ground
truth, synopsis propagation — at reduced scale and check the *shape* of the
paper's results: who is exact, who wins, and by roughly what ordering.
"""

import os

import numpy as np
import pytest

from repro.core.sketch import MNCSketch
from repro.estimators import make_estimator
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.optimizer import (
    enumerate_random_plans,
    optimize_chain_sparse,
    plan_cost_estimated,
)
from repro.sparsest import all_use_cases, get_use_case, run_use_case

SCALE = 0.03


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    os.environ["REPRO_MNC_CACHE"] = str(tmp_path_factory.mktemp("cache"))
    yield


def error_of(case_id, estimator_name, **kwargs):
    outcome = run_use_case(
        get_use_case(case_id), make_estimator(estimator_name, **kwargs),
        scale=SCALE,
    )
    return outcome.relative_error


class TestFigure10Claims:
    """B1 Struct: MNC and Bitset are exact; naive estimators are not."""

    @pytest.mark.parametrize("case_id", ["B1.1", "B1.2", "B1.3", "B1.4", "B1.5"])
    def test_mnc_exact_on_all_b1(self, case_id):
        assert error_of(case_id, "mnc") == pytest.approx(1.0)

    @pytest.mark.parametrize("case_id", ["B1.1", "B1.2", "B1.3", "B1.4", "B1.5"])
    def test_bitset_exact_on_all_b1(self, case_id):
        assert error_of(case_id, "bitset") == pytest.approx(1.0)

    def test_mnc_basic_fails_inner_case(self):
        # Figure 10(f): only the Theorem 3.2 bounds rescue B1.5.
        assert error_of("B1.5", "mnc_basic") > 10.0

    def test_meta_ac_fails_outer_case(self):
        assert error_of("B1.4", "meta_ac") > 10.0

    def test_dmap_fails_outer_case(self):
        assert error_of("B1.4", "density_map", block_size=64) > 10.0


class TestFigure11Claims:
    """B2 Real: MNC exact on B2.1/B2.2/B2.5, small errors on graphs."""

    def test_mnc_exact_on_nlp(self):
        assert error_of("B2.1", "mnc") == pytest.approx(1.0)

    def test_mnc_exact_on_projection(self):
        assert error_of("B2.2", "mnc") == pytest.approx(1.0)

    def test_mnc_exact_on_mask(self):
        assert error_of("B2.5", "mnc") == pytest.approx(1.0)

    def test_mnc_small_error_on_graphs(self):
        assert error_of("B2.3", "mnc") < 1.6
        assert error_of("B2.4", "mnc") < 1.6

    def test_mnc_beats_meta_and_dmap_on_projection(self):
        mnc = error_of("B2.2", "mnc")
        assert mnc < error_of("B2.2", "meta_ac")
        assert mnc < error_of("B2.2", "density_map", block_size=256)

    def test_lgraph_accurate_on_products(self):
        assert error_of("B2.3", "layered_graph", rounds=64) < 1.5


class TestFigure13And14Claims:
    """B3 chains: MNC stays accurate on mixed expressions."""

    def test_reshape_chain_matches_nlp_product(self):
        # B3.1 reshape is sparsity-preserving: MNC stays exact.
        assert error_of("B3.1", "mnc") == pytest.approx(1.0)

    def test_mnc_good_on_matrix_powers(self):
        assert error_of("B3.3", "mnc") < 2.0

    def test_mnc_beats_meta_on_recommender(self):
        assert error_of("B3.4", "mnc") < error_of("B3.4", "meta_ac")

    def test_mnc_beats_meta_and_dmap_on_predicate(self):
        mnc = error_of("B3.5", "mnc")
        assert mnc < error_of("B3.5", "meta_ac")
        assert mnc < error_of("B3.5", "meta_wc") * 1.5

    def test_scale_shift_chain_small_error(self):
        # Figure 15: MNC's final relative error on B3.2 is near 1.
        assert error_of("B3.2", "mnc") < 1.2


class TestSizeClaims:
    """Figure 9: MNC synopsis is orders of magnitude below bitset/dmap."""

    def test_synopsis_size_ordering(self):
        matrix = random_sparse(2000, 2000, 0.01, seed=1)
        sizes = {}
        for name in ("mnc", "bitset", "density_map", "meta_ac"):
            estimator = make_estimator(name)
            sizes[name] = estimator.build(matrix).size_bytes()
        assert sizes["meta_ac"] < sizes["mnc"] < sizes["bitset"]
        assert sizes["mnc"] < 5 * (2000 + 2000) * 8  # O(d)

    def test_bitset_is_64x_smaller_than_fp64(self):
        matrix = random_sparse(512, 512, 0.5, seed=2)
        bitset = make_estimator("bitset").build(matrix)
        assert bitset.size_bytes() == 512 * 512 / 8


class TestOptimizerClaims:
    """Appendix C / Figure 16: the sparsity-aware DP finds near-best plans."""

    def test_sparse_dp_in_bottom_percentile_of_random_plans(self):
        rng = np.random.default_rng(3)
        dims = [(30, 100), (100, 80), (80, 10), (10, 60), (60, 40), (40, 30)]
        sparsities = [0.9, 0.001, 0.5, 0.05, 0.9, 0.1]
        matrices = [
            random_sparse(m, n, s, seed=rng)
            for (m, n), s in zip(dims, sparsities)
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        solution = optimize_chain_sparse(sketches, rng=4)
        random_costs = [
            plan_cost_estimated(plan, sketches, rng=5)
            for plan in enumerate_random_plans(len(matrices), 60, rng=6)
        ]
        assert solution.cost <= np.percentile(random_costs, 10) * 1.05


class TestAllEstimatorsRunEverywhereTheyApply:
    def test_full_matrix_of_outcomes(self):
        estimators = [
            make_estimator(name)
            for name in ("meta_ac", "meta_wc", "mnc", "mnc_basic",
                         "density_map", "bitset")
        ]
        for case in all_use_cases():
            for estimator in estimators:
                outcome = run_use_case(case, estimator, scale=SCALE)
                assert outcome.ok, f"{case.id} x {outcome.estimator}: {outcome.status}"
                assert np.isfinite(outcome.estimated_nnz)
