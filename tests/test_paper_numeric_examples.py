"""Numeric examples stated verbatim in the paper, reproduced exactly.

Section 2.2: "consider a 200 x 100 matrix A with 50 non-zeros arranged as
a column vector (sA = 0.0025) and a dense 100 x 100 matrix B. The true
number of non-zeros is 5,000 but with block sizes b = 200, b = 100, and
b = 50, we estimate 4,429, 3,942, and 3,179."

These are deterministic closed-form values; matching them to the digit
validates the density-map formula (Eq 4) end to end.
"""

import numpy as np
import pytest

from repro.estimators.density_map import DensityMapEstimator
from repro.matrix.conversion import as_csr
from repro.matrix.ops import matmul
from repro.opcodes import Op


@pytest.fixture
def paper_pair():
    a = np.zeros((200, 100))
    a[:50, 0] = 1.0  # 50 non-zeros arranged as a column vector
    b = np.ones((100, 100))
    return as_csr(a), as_csr(b)


class TestSection22Example:
    def test_true_nnz_is_5000(self, paper_pair):
        a, b = paper_pair
        assert matmul(a, b).nnz == 5000

    @pytest.mark.parametrize(
        "block,expected",
        [(200, 4429), (100, 3942), (50, 3179)],
    )
    def test_density_map_estimates_match_paper(self, paper_pair, block, expected):
        a, b = paper_pair
        estimator = DensityMapEstimator(block_size=block)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert round(estimate) == expected

    def test_smaller_blocks_increase_error_monotonically(self, paper_pair):
        # The paper's observation: no collisions exist, yet smaller blocks
        # estimate more of them.
        a, b = paper_pair
        estimates = []
        for block in (200, 100, 50):
            estimator = DensityMapEstimator(block_size=block)
            estimates.append(estimator.estimate_nnz(
                Op.MATMUL, [estimator.build(a), estimator.build(b)]
            ))
        assert estimates[0] > estimates[1] > estimates[2]

    def test_mnc_exact_on_this_example(self, paper_pair):
        # max(hr_A) = 1, so Theorem 3.1 gives the exact 5,000.
        from repro.core.estimate import estimate_product_nnz
        from repro.core.sketch import MNCSketch

        a, b = paper_pair
        estimate = estimate_product_nnz(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        )
        assert estimate == 5000.0


class TestEquationOneExactForm:
    def test_meta_ac_matches_closed_form(self):
        # Eq 1 at sA = sB = 0.1, n = 80: 1 - (1 - 0.01)^80.
        from repro.estimators.metadata import MetaACEstimator

        estimator = MetaACEstimator()
        a = np.zeros((10, 80))
        a[np.unravel_index(np.arange(80), a.shape)] = 1.0  # 80 nnz = 0.1
        b = np.zeros((80, 10))
        b[np.unravel_index(np.arange(80), b.shape)] = 1.0
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        expected = (1 - (1 - 0.1 * 0.1) ** 80) * 100
        assert estimate == pytest.approx(expected, rel=1e-12)


class TestGithubFootnoteStyleSingleCounts:
    def test_single_counts_drive_extension_exactness(self):
        # The paper's footnote motivates extensions with real-world "0 or 1"
        # skew (89% of GitHub repos have <= 1 star). Emulate: 89% of columns
        # hold one non-zero, the rest many; the extension term captures the
        # single-column mass exactly.
        rng = np.random.default_rng(42)
        n = 200
        matrix = np.zeros((300, n))
        for col in range(int(0.89 * n)):
            matrix[rng.integers(0, 300), col] = 1.0
        for col in range(int(0.89 * n), n):
            rows = rng.choice(300, size=25, replace=False)
            matrix[rows, col] = 1.0
        from repro.core.sketch import MNCSketch

        sketch = MNCSketch.from_matrix(matrix)
        assert sketch.her is not None
        assert sketch.her.sum() == sketch.cols_single
        assert sketch.cols_single == int(0.89 * n)
