"""Integration: every estimator against every use case it can express.

Complements test_integration_paper_claims (which checks the figure lineup)
by sweeping the remaining estimators — hash, unbiased sampling, quad tree —
through the SparsEst runner and checking the contract: a finite positive
estimate or a clean 'unsupported' outcome, never an exception or a
nonsensical value.
"""

import math
import os

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.sparsest import all_use_cases, get_use_case, run_use_case

SCALE = 0.03


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    os.environ["REPRO_MNC_CACHE"] = str(tmp_path_factory.mktemp("cache"))
    yield


EXTRA_LINEUP = [
    ("hash", {}),
    ("sampling_unbiased", {}),
    ("quadtree_map", {"leaf_nnz": 64, "min_block": 8}),
    ("exact", {}),
]


class TestContract:
    @pytest.mark.parametrize("name,kwargs", EXTRA_LINEUP)
    def test_all_use_cases(self, name, kwargs):
        estimator = make_estimator(name, **kwargs)
        for case in all_use_cases():
            outcome = run_use_case(case, estimator, scale=SCALE)
            if outcome.status == "unsupported":
                continue
            assert outcome.ok, f"{case.id} x {name}: {outcome.status}"
            assert outcome.estimated_nnz >= 0
            assert math.isfinite(outcome.estimated_nnz)
            m, n = case.build(scale=SCALE, seed=0).shape
            assert outcome.estimated_nnz <= m * n + 1e-6

    def test_exact_oracle_error_is_one_everywhere(self):
        estimator = make_estimator("exact")
        for case in all_use_cases():
            outcome = run_use_case(case, estimator, scale=SCALE)
            assert outcome.relative_error == pytest.approx(1.0), case.id


class TestCoverageBoundaries:
    def test_hash_covers_products_only(self):
        estimator = make_estimator("hash")
        products = run_use_case(get_use_case("B2.3"), estimator, scale=SCALE)
        assert products.ok
        elementwise = run_use_case(get_use_case("B2.5"), estimator, scale=SCALE)
        assert elementwise.status == "unsupported"
        chain = run_use_case(get_use_case("B3.3"), estimator, scale=SCALE)
        assert chain.status == "unsupported"  # no propagation

    def test_unbiased_sampling_covers_chains(self):
        estimator = make_estimator("sampling_unbiased")
        chain = run_use_case(get_use_case("B3.3"), estimator, scale=SCALE)
        assert chain.ok

    def test_quadtree_covers_elementwise_not_reshape(self):
        estimator = make_estimator("quadtree_map", leaf_nnz=64, min_block=8)
        mask = run_use_case(get_use_case("B2.5"), estimator, scale=SCALE)
        assert mask.ok
        reshape_case = run_use_case(get_use_case("B3.1"), estimator, scale=SCALE)
        assert reshape_case.status == "unsupported"

    def test_quadtree_reasonable_on_graph_product(self):
        estimator = make_estimator("quadtree_map", leaf_nnz=64, min_block=8)
        outcome = run_use_case(get_use_case("B2.4"), estimator, scale=SCALE)
        assert outcome.ok
        assert outcome.relative_error < 100


class TestSeedStability:
    @pytest.mark.parametrize("case_id", ["B1.1", "B2.3", "B3.5"])
    def test_mnc_stable_across_data_seeds(self, case_id):
        estimator = make_estimator("mnc")
        errors = []
        for seed in range(3):
            outcome = run_use_case(
                get_use_case(case_id), estimator, scale=SCALE, seed=seed
            )
            assert outcome.ok
            errors.append(outcome.relative_error)
        assert max(errors) < 3.0
        # Error magnitudes stay in one regime across seeds.
        assert max(errors) <= max(1.5 * min(errors), min(errors) + 0.5)
