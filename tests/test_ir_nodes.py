"""Unit tests for the expression IR nodes and shape inference."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.nodes import (
    Expr,
    cbind,
    diag,
    eq_zero,
    ewise_add,
    ewise_mult,
    leaf,
    matmul,
    neq_zero,
    rbind,
    reshape,
    transpose,
)
from repro.matrix.random import random_sparse
from repro.opcodes import Op


class TestLeaf:
    def test_leaf_shape(self):
        node = leaf(np.ones((3, 4)), name="A")
        assert node.shape == (3, 4)
        assert node.op is Op.LEAF
        assert node.label == "A"

    def test_leaf_without_matrix_rejected(self):
        with pytest.raises(ShapeError):
            Expr(Op.LEAF)

    def test_unnamed_leaf_label(self):
        node = leaf(np.ones((2, 2)))
        assert "leaf" in node.label


class TestShapeInference:
    def test_matmul(self):
        node = matmul(leaf(np.ones((3, 4))), leaf(np.ones((4, 5))))
        assert node.shape == (3, 5)

    def test_matmul_mismatch(self):
        with pytest.raises(ShapeError):
            matmul(leaf(np.ones((3, 4))), leaf(np.ones((5, 6))))

    def test_ewise_shapes(self):
        a, b = leaf(np.ones((3, 4))), leaf(np.ones((3, 4)))
        assert ewise_add(a, b).shape == (3, 4)
        assert ewise_mult(a, b).shape == (3, 4)
        with pytest.raises(ShapeError):
            ewise_add(a, leaf(np.ones((4, 3))))

    def test_transpose(self):
        assert transpose(leaf(np.ones((3, 5)))).shape == (5, 3)

    def test_reshape(self):
        assert reshape(leaf(np.ones((4, 6))), 8, 3).shape == (8, 3)
        with pytest.raises(ShapeError):
            reshape(leaf(np.ones((4, 6))), 5, 5)

    def test_diag_dispatch(self):
        assert diag(leaf(np.ones((4, 1)))).op is Op.DIAG_V2M
        assert diag(leaf(np.ones((4, 4)))).op is Op.DIAG_M2V
        with pytest.raises(ShapeError):
            diag(leaf(np.ones((3, 4))))

    def test_binds(self):
        a, b = leaf(np.ones((2, 4))), leaf(np.ones((3, 4)))
        assert rbind(a, b).shape == (5, 4)
        c = leaf(np.ones((2, 6)))
        assert cbind(a, c).shape == (2, 10)
        with pytest.raises(ShapeError):
            rbind(a, c)
        with pytest.raises(ShapeError):
            cbind(a, b)

    def test_indicators(self):
        a = leaf(np.ones((3, 4)))
        assert neq_zero(a).shape == (3, 4)
        assert eq_zero(a).shape == (3, 4)

    def test_wrong_arity_rejected(self):
        a = leaf(np.ones((2, 2)))
        with pytest.raises(ShapeError):
            Expr(Op.MATMUL, (a,))
        with pytest.raises(ShapeError):
            Expr(Op.TRANSPOSE, (a, a))


class TestOperatorSugar:
    def test_matmul_operator(self):
        a, b = leaf(np.ones((2, 3))), leaf(np.ones((3, 4)))
        node = a @ b
        assert node.op is Op.MATMUL
        assert node.shape == (2, 4)

    def test_add_and_mult_operators(self):
        a, b = leaf(np.ones((2, 3))), leaf(np.ones((2, 3)))
        assert (a + b).op is Op.EWISE_ADD
        assert (a * b).op is Op.EWISE_MULT

    def test_transpose_property(self):
        a = leaf(np.ones((2, 5)))
        assert a.T.op is Op.TRANSPOSE
        assert a.T.shape == (5, 2)

    def test_reshape_method(self):
        a = leaf(np.ones((2, 6)))
        assert a.reshape(3, 4).shape == (3, 4)


class TestTraversal:
    def test_postorder_children_first(self):
        a = leaf(np.ones((2, 2)), name="a")
        b = leaf(np.ones((2, 2)), name="b")
        root = a @ b
        order = list(root.postorder())
        assert order.index(a) < order.index(root)
        assert order.index(b) < order.index(root)

    def test_shared_node_visited_once(self):
        shared = leaf(random_sparse(4, 4, 0.5, seed=1), name="shared")
        root = (shared @ shared) + (shared @ shared)
        nodes = list(root.postorder())
        assert nodes.count(shared) == 1

    def test_leaves(self):
        a = leaf(np.ones((2, 3)), name="a")
        b = leaf(np.ones((3, 2)), name="b")
        root = (a @ b).T
        assert set(root.leaves()) == {a, b}

    def test_repr_is_informative(self):
        a = leaf(np.ones((2, 3)), name="A")
        node = a.T
        assert "transpose" in repr(node)
        assert "A" in repr(node)
