"""Unit tests for the B1 structured-input generators."""

import numpy as np

from repro.matrix import ops as mops
from repro.matrix.properties import col_nnz, is_permutation, row_nnz, sparsity
from repro.sparsest.generators import (
    embeddings_matrix,
    inner_pair,
    nlp_pair,
    outer_pair,
    permutation_pair,
    scale_pair,
    scale_shift_matrix,
)


class TestEmbeddings:
    def test_dense_except_last_row(self):
        matrix = embeddings_matrix(50, 16, seed=1)
        counts = row_nnz(matrix)
        assert counts[-1] == 0
        np.testing.assert_array_equal(counts[:-1], np.full(49, 16))


class TestNlpPair:
    def test_output_sparsity_is_known_fraction(self):
        tokens, embeddings = nlp_pair(
            rows=2000, vocab=300, dimensions=8, known_fraction=0.1, seed=2
        )
        product = mops.matmul(tokens, embeddings)
        # Paper property: output sparsity ~= known_fraction independent of dims.
        assert 0.06 < sparsity(product) < 0.14

    def test_token_matrix_single_nnz_rows(self):
        tokens, _ = nlp_pair(rows=500, vocab=100, seed=3)
        np.testing.assert_array_equal(row_nnz(tokens), np.ones(500))

    def test_unknown_column_dominates(self):
        tokens, _ = nlp_pair(rows=1000, vocab=100, known_fraction=0.01, seed=4)
        assert col_nnz(tokens)[-1] > 900


class TestScaleAndPerm:
    def test_scale_pair_structure_preserved(self):
        scaling, x = scale_pair(n=200, cols=40, sparsity=0.1, seed=5)
        product = mops.matmul(scaling, x)
        assert product.nnz == x.nnz

    def test_permutation_pair(self):
        permutation, x = permutation_pair(n=150, cols=30, sparsity=0.4, seed=6)
        assert is_permutation(permutation)
        product = mops.matmul(permutation, x)
        assert product.nnz == x.nnz


class TestOuterInner:
    def test_outer_fully_dense(self):
        column, row = outer_pair(n=50)
        assert mops.matmul(column, row).nnz == 50 * 50

    def test_inner_single_nnz(self):
        row, column = inner_pair(n=50)
        assert mops.matmul(row, column).nnz == 1


class TestScaleShift:
    def test_structure(self):
        s = scale_shift_matrix(20)
        assert s.shape == (20, 20)
        counts = col_nnz(s)
        # Every column: diagonal + last-row entry (except last column which
        # holds both in one cell).
        np.testing.assert_array_equal(counts[:-1], np.full(19, 2))
        assert counts[-1] == 1
        assert s.nnz == 2 * 20 - 1

    def test_last_row_dense(self):
        s = scale_shift_matrix(12)
        assert row_nnz(s)[-1] == 12
