"""Unit tests for the biased and unbiased sampling estimators."""

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators.sampling import (
    SamplingEstimator,
    SamplingSynopsis,
    UnbiasedSamplingEstimator,
)
from repro.matrix import ops as mops
from repro.matrix.random import outer_product_pair, random_sparse
from repro.opcodes import Op


class TestBiasedSampling:
    def test_is_lower_bound_like(self):
        # Eq 5 takes the max sampled outer product: it cannot exceed the
        # truth when non-zeros overlap across slices.
        estimator = SamplingEstimator(fraction=0.5, seed=1)
        a = random_sparse(100, 80, 0.1, seed=2)
        b = random_sparse(80, 90, 0.1, seed=3)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate <= truth

    def test_full_sample_still_biased(self):
        # Even |S| = n does not converge: the estimate is the largest single
        # outer product, not the union.
        estimator = SamplingEstimator(fraction=1.0, seed=4)
        a = random_sparse(60, 40, 0.2, seed=5)
        b = random_sparse(40, 60, 0.2, seed=6)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate < truth

    def test_exact_on_inner_case(self):
        # B1.5: single overlapping outer product -> the max IS the truth.
        row, column = outer_product_pair(32)
        estimator = SamplingEstimator(fraction=1.0, seed=7)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(row.T), estimator.build(column.T)]
        )
        assert estimate >= 1.0

    def test_no_chain_support(self):
        estimator = SamplingEstimator(seed=8)
        synopsis = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.propagate(Op.MATMUL, [synopsis, synopsis])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SamplingEstimator(fraction=0.0)
        with pytest.raises(ValueError):
            SamplingEstimator(fraction=1.5)

    def test_synopsis_size_is_sample_footprint(self):
        estimator = SamplingEstimator(fraction=0.1, seed=9)
        synopsis = estimator.build(random_sparse(100, 200, 0.1, seed=10))
        assert synopsis.size_bytes() == round(0.1 * 200) * 8


class TestUnbiasedSampling:
    def test_close_on_uniform_data(self):
        estimator = UnbiasedSamplingEstimator(fraction=0.3, seed=11)
        a = random_sparse(300, 200, 0.05, seed=12)
        b = random_sparse(200, 250, 0.05, seed=13)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 1.2 <= estimate <= truth * 1.2

    def test_full_sample_matches_density_fallback(self):
        # For |S| = n, Eq 16 degenerates to the MNC fallback formula
        # (Appendix A remark): same probabilistic union of outer products.
        from repro.core.estimate import density_map_vector_estimate
        from repro.matrix.properties import col_nnz, row_nnz

        estimator = UnbiasedSamplingEstimator(fraction=1.0, seed=14)
        a = random_sparse(50, 40, 0.2, seed=15)
        b = random_sparse(40, 60, 0.2, seed=16)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        expected = density_map_vector_estimate(
            col_nnz(a).astype(float), row_nnz(b).astype(float), 50.0 * 60.0
        )
        assert estimate == pytest.approx(expected, rel=1e-6)

    def test_chain_propagation_uses_uniform_counts(self):
        estimator = UnbiasedSamplingEstimator(fraction=0.5, seed=17)
        a = random_sparse(80, 60, 0.1, seed=18)
        b = random_sparse(60, 70, 0.1, seed=19)
        c = random_sparse(70, 50, 0.1, seed=20)
        h_ab = estimator.propagate(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert isinstance(h_ab, SamplingSynopsis)
        assert h_ab.col_counts is None  # propagated: uniform assumption
        estimate = estimator.estimate_nnz(Op.MATMUL, [h_ab, estimator.build(c)])
        truth = mops.matmul(mops.matmul(a, b), c).nnz
        assert truth / 2 <= estimate <= truth * 2

    def test_empty_operand(self):
        estimator = UnbiasedSamplingEstimator(seed=21)
        a = estimator.build(np.zeros((5, 4)))
        b = estimator.build(np.ones((4, 3)))
        assert estimator.estimate_nnz(Op.MATMUL, [a, b]) == 0.0


class TestEwiseSupport:
    @pytest.mark.parametrize("cls", [SamplingEstimator, UnbiasedSamplingEstimator])
    def test_ewise_mult_average_case(self, cls):
        estimator = cls(fraction=0.5, seed=22)
        a = random_sparse(100, 100, 0.2, seed=23)
        b = random_sparse(100, 100, 0.2, seed=24)
        truth = mops.ewise_mult(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.EWISE_MULT, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 2 <= estimate <= truth * 2

    def test_ewise_add_bounded_by_cells(self):
        estimator = SamplingEstimator(fraction=0.5, seed=25)
        a = random_sparse(20, 20, 0.9, seed=26)
        b = random_sparse(20, 20, 0.9, seed=27)
        estimate = estimator.estimate_nnz(
            Op.EWISE_ADD, [estimator.build(a), estimator.build(b)]
        )
        assert estimate <= 400.0
