"""Unit tests for Cohen's layered-graph estimator."""

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators.layered_graph import (
    LayeredGraphEstimator,
    frontier_column_estimates,
    frontier_nnz_estimate,
    propagate_frontier,
)
from repro.matrix import ops as mops
from repro.matrix.conversion import as_csc
from repro.matrix.random import permutation_matrix, random_sparse
from repro.opcodes import Op


class TestFrontierPropagation:
    def test_min_semantics(self):
        structure = as_csc(np.array([[1, 0], [1, 1]]))
        frontier = np.array([[3.0, 5.0], [1.0, 9.0]])
        result = propagate_frontier(frontier, structure)
        np.testing.assert_array_equal(result[0], [1.0, 5.0])  # min of both rows
        np.testing.assert_array_equal(result[1], [1.0, 9.0])  # only row 1

    def test_empty_column_is_unreachable(self):
        structure = as_csc(np.array([[1, 0], [1, 0]]))
        frontier = np.ones((2, 3))
        result = propagate_frontier(frontier, structure)
        assert np.all(np.isinf(result[1]))

    def test_inf_parents_ignored_when_finite_exists(self):
        structure = as_csc(np.array([[1], [1]]))
        frontier = np.array([[np.inf, np.inf], [2.0, 3.0]])
        result = propagate_frontier(frontier, structure)
        np.testing.assert_array_equal(result[0], [2.0, 3.0])

    def test_shape_mismatch(self):
        structure = as_csc(np.eye(3))
        with pytest.raises(Exception):
            propagate_frontier(np.ones((2, 4)), structure)


class TestEstimates:
    def test_reach_set_estimate_accuracy(self):
        # A column reached by N leaves has min-exponential entries with
        # rate N; the (r-1)/sum estimate should be close for large r.
        rng = np.random.default_rng(1)
        n_leaves, rounds = 500, 256
        frontier = rng.exponential(1.0, size=(n_leaves, rounds)).min(axis=0)
        estimate = frontier_nnz_estimate(frontier.reshape(1, rounds))
        assert n_leaves / 1.25 <= estimate <= n_leaves * 1.25

    def test_unreachable_contributes_zero(self):
        frontier = np.full((3, 8), np.inf)
        assert frontier_nnz_estimate(frontier) == 0.0

    def test_column_estimates_vector(self):
        frontier = np.vstack([
            np.full(16, np.inf),
            np.full(16, 0.5),
        ])
        estimates = frontier_column_estimates(frontier)
        assert estimates[0] == 0.0
        assert estimates[1] == pytest.approx(15 / 8.0)


class TestEstimator:
    def test_single_product_accuracy(self):
        estimator = LayeredGraphEstimator(rounds=64, seed=2)
        a = random_sparse(200, 150, 0.05, seed=3)
        b = random_sparse(150, 180, 0.05, seed=4)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 1.3 <= estimate <= truth * 1.3

    def test_permutation_product_near_exact(self):
        estimator = LayeredGraphEstimator(rounds=128, seed=5)
        p = permutation_matrix(150, seed=6)
        x = random_sparse(150, 60, 0.2, seed=7)
        truth = x.nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(p), estimator.build(x)]
        )
        assert truth / 1.15 <= estimate <= truth * 1.15

    def test_chain_left_deep(self):
        estimator = LayeredGraphEstimator(rounds=64, seed=8)
        a = random_sparse(100, 80, 0.08, seed=9)
        b = random_sparse(80, 90, 0.08, seed=10)
        c = random_sparse(90, 70, 0.08, seed=11)
        h_ab = estimator.propagate(Op.MATMUL, [estimator.build(a), estimator.build(b)])
        estimate = estimator.estimate_nnz(Op.MATMUL, [h_ab, estimator.build(c)])
        truth = mops.matmul(mops.matmul(a, b), c).nnz
        assert truth / 1.5 <= estimate <= truth * 1.5

    def test_right_operand_must_be_leaf(self):
        estimator = LayeredGraphEstimator(seed=12)
        a = random_sparse(20, 20, 0.2, seed=13)
        h = estimator.build(a)
        intermediate = estimator.propagate(Op.MATMUL, [h, h])
        with pytest.raises(UnsupportedOperationError):
            estimator.propagate(Op.MATMUL, [h, intermediate])

    def test_more_rounds_reduce_error(self):
        a = random_sparse(300, 200, 0.03, seed=14)
        b = random_sparse(200, 250, 0.03, seed=15)
        truth = mops.matmul(a, b).nnz
        errors = {}
        for rounds in (2, 128):
            per_seed = []
            for seed in range(8):
                estimator = LayeredGraphEstimator(rounds=rounds, seed=seed)
                estimate = estimator.estimate_nnz(
                    Op.MATMUL, [estimator.build(a), estimator.build(b)]
                )
                per_seed.append(max(estimate, truth) / min(estimate, truth))
            errors[rounds] = np.mean(per_seed)
        assert errors[128] < errors[2]

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            LayeredGraphEstimator(rounds=1)

    def test_no_elementwise(self):
        estimator = LayeredGraphEstimator(seed=16)
        synopsis = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.estimate_nnz(Op.EWISE_ADD, [synopsis, synopsis])

    def test_size_linear_in_nnz_and_dims(self):
        estimator = LayeredGraphEstimator(rounds=32, seed=17)
        small = estimator.build(random_sparse(50, 50, 0.05, seed=18))
        large = estimator.build(random_sparse(500, 500, 0.05, seed=19))
        assert large.size_bytes() > small.size_bytes()

    def test_empty_product_estimates_zero(self):
        estimator = LayeredGraphEstimator(seed=20)
        a = estimator.build(np.zeros((10, 8)))
        b = estimator.build(random_sparse(8, 6, 0.5, seed=21))
        assert estimator.estimate_nnz(Op.MATMUL, [a, b]) == 0.0
