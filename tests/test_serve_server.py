"""End-to-end tests for the estimation server (repro.serve.server).

Each test boots a real server on a loopback port (port 0 -> ephemeral) and
talks to it over actual HTTP via :class:`ServeClient` — the same transport
the CI smoke job and the serving benchmark use.
"""

import threading

import numpy as np
import pytest

from repro.catalog.service import EstimationService, ServiceRequest
from repro.catalog.sharded import ShardedSketchStore
from repro.matrix.random import random_sparse
from repro.serve import EstimationServer, MatrixRegistry, ServeClient, start_server_thread
from repro.serve.client import ServeClientError


@pytest.fixture()
def server():
    service = EstimationService(store=ShardedSketchStore(num_shards=4))
    handle = start_server_thread(EstimationServer(service=service, port=0))
    client = ServeClient(handle.host, handle.port)
    try:
        yield client, handle.server
    finally:
        client.close()
        handle.stop()


def _matrices():
    x = random_sparse(50, 40, 0.1, seed=11)
    w = random_sparse(40, 30, 0.15, seed=12)
    return x, w


MATMUL_XW = {"op": "matmul", "inputs": [{"ref": "X"}, {"ref": "W"}]}


class TestEndpoints:
    def test_healthz(self, server):
        client, _ = server
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_register_and_estimate(self, server):
        client, _ = server
        x, w = _matrices()
        reply = client.register("X", x)
        assert reply["nnz"] == x.nnz and reply["shape"] == [50, 40]
        client.register("W", w)
        result = client.estimate(MATMUL_XW)
        assert result["cached"] is False
        assert result["nnz"] > 0
        warm = client.estimate(MATMUL_XW)
        assert warm["cached"] is True
        assert warm["nnz"] == result["nnz"]
        assert warm["fingerprint"] == result["fingerprint"]

    def test_estimate_with_intermediates(self, server):
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        result = client.estimate(MATMUL_XW, include_intermediates=True)
        assert len(result["intermediates"]) == 3  # two leaves + root

    def test_batch(self, server):
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        results = client.estimate_batch([MATMUL_XW, {"ref": "X"}, MATMUL_XW])
        assert len(results) == 3
        assert results[1]["nnz"] == float(x.nnz)
        assert results[0]["nnz"] == results[2]["nnz"]

    def test_chain(self, server):
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        reply = client.optimize_chain(["X", "W"], seed=3)
        assert reply["plan"] == [0, 1]
        assert reply["cost"] > 0
        assert reply["names"] == ["X", "W"]

    def test_stats(self, server):
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        client.estimate({"ref": "X"})
        stats = client.stats()
        assert [m["name"] for m in stats["matrices"]] == ["X"]
        assert stats["catalog"]["service"]["requests"] >= 1
        assert stats["store_shards"] == 4

    def test_metrics_scrape(self, server):
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        client.estimate({"ref": "X"})
        text = client.metrics_text()
        assert "repro_serve_requests_estimate_total" in text
        assert "repro_serve_latency_seconds_estimate_bucket" in text
        assert "repro_serve_requests_matrices_total" in text


class TestShardMergedIngest:
    def test_row_partitioned_registration(self, server):
        client, srv = server
        _, w = _matrices()
        reply = client.register_partitioned("W", [w[:25], w[25:]], axis=0)
        assert reply["merged"] is True and reply["shards"] == 2
        assert reply["shape"] == [40, 30]
        assert reply["nnz"] == w.nnz
        # The reassembled matrix matches the original structurally.
        stored = srv.registry.matrix("W")
        np.testing.assert_array_equal(
            (stored.toarray() != 0), (w.toarray() != 0)
        )

    def test_out_of_order_shards(self, server):
        client, srv = server
        _, w = _matrices()
        reply = client.register_partitioned(
            "W", [w[25:], w[:25]], axis=0, indices=[1, 0]
        )
        assert reply["nnz"] == w.nnz
        stored = srv.registry.matrix("W")
        np.testing.assert_array_equal(
            (stored.toarray() != 0), (w.toarray() != 0)
        )

    def test_col_partitioned_registration(self, server):
        client, _ = server
        _, w = _matrices()
        reply = client.register_partitioned("W", [w[:, :10], w[:, 10:]], axis=1)
        assert reply["shape"] == [40, 30] and reply["nnz"] == w.nnz

    def test_merged_sketch_is_the_served_synopsis(self, server):
        """Estimates answered for a shard-merged matrix come from the
        *merged* sketch — identical to a direct service using
        register_sketched, not to one that re-sketched the full matrix."""
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register_partitioned("W", [w[:25], w[25:]], axis=0)
        served = client.estimate(MATMUL_XW)

        direct = EstimationService()
        registry = MatrixRegistry(direct)
        registry.register("X", x)
        registry.register_partitioned("W", [w[:25], w[25:]], axis=0)
        expr_direct = direct.submit(ServiceRequest.estimate(
            __import__("repro.serve.protocol", fromlist=["decode_expr"]).decode_expr(
                MATMUL_XW, registry.resolve
            )
        ))
        assert served["nnz"] == expr_direct["nnz"]
        assert served["fingerprint"] == expr_direct["fingerprint"]

    def test_mismatched_shards_rejected(self, server):
        client, _ = server
        _, w = _matrices()
        with pytest.raises(ServeClientError) as excinfo:
            client.register_partitioned("W", [w[:25], w[25:, :10]], axis=0)
        assert excinfo.value.status == 400


class TestBitIdentity:
    def test_server_matches_direct_service(self, server):
        """The acceptance property at test scale: every server answer is
        bit-identical to a direct EstimationService fed the same
        registrations and the same request order."""
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register_partitioned("W", [w[:20], w[20:]], axis=0)

        direct = EstimationService()
        registry = MatrixRegistry(direct)
        registry.register("X", x)
        registry.register_partitioned("W", [w[:20], w[20:]], axis=0)

        from repro.serve.protocol import decode_expr

        wires = [
            MATMUL_XW,
            {"ref": "X"},
            {"op": "transpose", "inputs": [MATMUL_XW]},
            MATMUL_XW,  # warm replay
        ]
        for wire in wires:
            served = client.estimate(wire)
            expected = direct.submit(
                ServiceRequest.estimate(decode_expr(wire, registry.resolve))
            )
            assert served["nnz"] == expected["nnz"], wire
            assert served["sparsity"] == expected["sparsity"], wire
            assert served["fingerprint"] == expected["fingerprint"], wire
            assert served["cached"] == expected["cached"], wire

        served_chain = client.optimize_chain(["X", "W"], seed=9)
        expected_chain = direct.submit(ServiceRequest.chain(
            [registry.matrix("X"), registry.matrix("W")],
            rng=np.random.default_rng(9),
        ))
        from repro.serve.protocol import encode_chain_solution

        expected_encoded = encode_chain_solution(expected_chain)
        assert served_chain["plan"] == expected_encoded["plan"]
        assert served_chain["cost"] == expected_encoded["cost"]


class TestErrors:
    def test_unknown_path_404(self, server):
        client, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, server):
        client, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            client.request("POST", "/healthz", {})
        assert excinfo.value.status == 405

    def test_invalid_json_400(self, server):
        client, _ = server
        import http.client

        connection = http.client.HTTPConnection(client.host, client.port)
        connection.request(
            "POST", "/estimate", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    def test_unknown_ref_400(self, server):
        client, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            client.estimate({"ref": "ghost"})
        assert excinfo.value.status == 400
        assert "ghost" in excinfo.value.message

    def test_shape_mismatch_400(self, server):
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        with pytest.raises(ServeClientError) as excinfo:
            client.estimate({"op": "matmul", "inputs": [{"ref": "X"}, {"ref": "X"}]})
        assert excinfo.value.status == 400

    def test_server_survives_errors(self, server):
        """Errors never poison the connection or the server."""
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        for _ in range(3):
            with pytest.raises(ServeClientError):
                client.estimate({"ref": "ghost"})
            assert client.estimate({"ref": "X"})["nnz"] == float(x.nnz)


class TestConcurrency:
    def test_many_threads_one_server(self, server):
        """Multi-tenant smoke: concurrent clients with distinct namespaces
        all get consistent answers."""
        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        baseline = client.estimate(MATMUL_XW)["nnz"]
        errors = []
        barrier = threading.Barrier(6)

        def tenant(worker):
            own = ServeClient(client.host, client.port)
            try:
                barrier.wait()
                for _ in range(10):
                    assert own.estimate(MATMUL_XW)["nnz"] == baseline
                    assert own.estimate({"ref": "X"})["nnz"] == float(x.nnz)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)
            finally:
                own.close()

        threads = [threading.Thread(target=tenant, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_rebind_invalidates_old_estimates(self, server):
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        first = client.estimate({"ref": "X"})
        replacement = random_sparse(50, 40, 0.3, seed=99)
        client.register("X", replacement)
        second = client.estimate({"ref": "X"})
        assert second["nnz"] == float(replacement.nnz)
        assert second["fingerprint"] != first["fingerprint"]


class TestStreamingUpdates:
    def test_update_rebinds_name_and_estimates_fresh(self, server):
        from repro.core.incremental import AppendRows

        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        before = client.estimate(MATMUL_XW)
        assert client.estimate(MATMUL_XW)["cached"] is True

        reply = client.apply_update("X", AppendRows([np.array([0, 3, 7])]))
        assert reply["name"] == "X"
        assert reply["shape"] == [51, 40]
        assert reply["nnz"] == x.nnz + 3
        assert reply["updates"] == 1
        assert reply["fingerprint"] != before["fingerprint"]

        after = client.estimate(MATMUL_XW)
        # The old memoized result was evicted; the new answer covers the
        # appended row and is computed fresh.
        assert after["cached"] is False
        assert after["fingerprint"] != before["fingerprint"]
        assert client.estimate({"ref": "X"})["nnz"] == float(x.nnz + 3)

    def test_update_matches_from_scratch_registration(self, server):
        """Server answers over a patched name are bit-identical to
        registering the mutated matrix directly."""
        from repro.core.incremental import (
            AppendRows,
            BlockUpdate,
            DeleteRows,
            IncrementalSketch,
            apply_update,
        )

        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)

        deltas = [
            AppendRows([np.array([1, 4]), np.array([0, 2, 39])]),
            DeleteRows([0, 5]),
            BlockUpdate(2, 3, (np.arange(20).reshape(4, 5) % 3 == 0)),
        ]
        reply = client.apply_updates("X", deltas)
        assert reply["updates"] == 3

        local = IncrementalSketch(x)
        for delta in deltas:
            apply_update(local, delta)
        mutated = local.to_matrix()
        assert reply["shape"] == [mutated.shape[0], mutated.shape[1]]
        assert reply["nnz"] == mutated.nnz
        client.register("Y", mutated)

        got = client.estimate(MATMUL_XW)["nnz"]
        want = client.estimate(
            {"op": "matmul", "inputs": [{"ref": "Y"}, {"ref": "W"}]}
        )["nnz"]
        assert got == want

    def test_untouched_name_stays_cached_across_update(self, server):
        from repro.core.incremental import DeleteCols

        client, _ = server
        x, w = _matrices()
        client.register("X", x)
        client.register("W", w)
        w_expr = {
            "op": "ewise_mult", "inputs": [{"ref": "W"}, {"ref": "W"}],
        }
        assert client.estimate(w_expr)["cached"] is False
        client.apply_update("X", DeleteCols([0]))
        # W was untouched: its memoized root estimate survived the delta
        # (partial invalidation), even though the parse cache flushed.
        assert client.estimate(w_expr)["cached"] is True

    def test_update_unknown_name_400(self, server):
        from repro.core.incremental import DeleteRows

        client, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            client.apply_update("ghost", DeleteRows([0]))
        assert excinfo.value.status == 400
        assert "ghost" in excinfo.value.message

    def test_update_out_of_range_delta_400(self, server):
        from repro.core.incremental import DeleteRows

        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        with pytest.raises(ServeClientError) as excinfo:
            client.apply_update("X", DeleteRows([10_000]))
        assert excinfo.value.status == 400

    def test_update_malformed_payload_400(self, server):
        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        with pytest.raises(ServeClientError) as excinfo:
            client.request("POST", "/matrices/X/updates", {"delta": {"kind": "bogus"}})
        assert excinfo.value.status == 400

    def test_update_wrong_method_405(self, server):
        client, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            client.request("GET", "/matrices/X/updates")
        assert excinfo.value.status == 405

    def test_reregister_resets_streaming_state(self, server):
        from repro.core.incremental import AppendRows

        client, _ = server
        x, _ = _matrices()
        client.register("X", x)
        client.apply_update("X", AppendRows([np.array([0])]))
        # Re-registering wholesale discards the incremental tracker; the
        # next delta starts from the re-registered structure.
        client.register("X", x)
        reply = client.apply_update("X", AppendRows([np.array([1])]))
        assert reply["shape"] == [51, 40]
        assert reply["nnz"] == x.nnz + 1
