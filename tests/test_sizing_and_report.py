"""Tests for the analytical size models, report rendering, and opcodes."""

import math

import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators.sizing import (
    bitset_size_bytes,
    density_map_size_bytes,
    layered_graph_size_bytes,
    metadata_size_bytes,
    mnc_size_bytes,
    sampling_size_bytes,
    synopsis_size_bytes,
)
from repro.opcodes import Op
from repro.sparsest.report import format_error, simple_table, timings_table
from repro.sparsest.runner import EstimateOutcome


class TestSizeModels:
    def test_bitset_one_bit_per_cell(self):
        assert bitset_size_bytes(8, 8, 0) == 8  # 8 rows x 1 byte
        assert bitset_size_bytes(1000, 1000, 0) == 1000 * 125

    def test_density_map_blocks(self):
        assert density_map_size_bytes(512, 512, 0, block_size=256) == 4 * 8
        assert density_map_size_bytes(513, 512, 0, block_size=256) == 6 * 8

    def test_mnc_linear_in_dims(self):
        with_ext = mnc_size_bytes(1000, 1000, 0)
        without = mnc_size_bytes(1000, 1000, 0, with_extensions=False)
        assert with_ext == pytest.approx(2 * without, rel=0.05)

    def test_layered_graph_grows_with_nnz(self):
        small = layered_graph_size_bytes(1000, 1000, 1000)
        large = layered_graph_size_bytes(1000, 1000, 1_000_000)
        assert large > small

    def test_metadata_constant(self):
        assert metadata_size_bytes(10, 10, 5) == metadata_size_bytes(10**9, 10**9, 10**12)

    def test_sampling_fraction(self):
        assert sampling_size_bytes(100, 1000, 0, fraction=0.1) == 100 * 8

    def test_dispatch(self):
        assert synopsis_size_bytes("mnc", 100, 100, 50) == mnc_size_bytes(100, 100, 50)
        with pytest.raises(UnsupportedOperationError):
            synopsis_size_bytes("unknown", 1, 1, 0)

    def test_paper_figure9_anchor_points(self):
        # 1M x 1M: MNC ~32 MB-scale, bitset ~125 GB, DMap ~122 MB (paper).
        gigabyte = 1024.0**3
        assert bitset_size_bytes(10**6, 10**6, 0) / gigabyte == pytest.approx(116.4, rel=0.01)
        assert mnc_size_bytes(10**6, 10**6, 0) / 1e6 == pytest.approx(32.0, rel=0.05)
        assert density_map_size_bytes(10**6, 10**6, 0) / 1e6 == pytest.approx(122.0, rel=0.05)


class TestReportRendering:
    def test_format_error_values(self):
        assert format_error(1.0) == "1.00"
        assert format_error(2.345) == "2.35"
        assert format_error(float("inf")) == "INF"
        assert format_error(float("nan")) == "x"
        assert format_error(None) == "x"
        assert "e+" in format_error(123456.0)

    def test_simple_table_alignment(self):
        table = simple_table(["a", "b"], [[1, 2.5], ["long-label", 3.0]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_simple_table_pads_short_rows(self):
        table = simple_table(["a", "b", "c"], [["x"]])
        assert "x" in table

    def test_timings_table(self):
        outcomes = [
            EstimateOutcome("B1.1", "MNC", 10, 10, 1.0, 0.0123, "ok"),
            EstimateOutcome("B1.1", "Hash", 10, math.nan, math.inf, 0.0, "unsupported"),
        ]
        table = timings_table(outcomes, title="timings")
        assert "0.0123" in table
        assert "x" in table


class TestOpcodes:
    def test_arity(self):
        assert Op.MATMUL.arity == 2
        assert Op.TRANSPOSE.arity == 1
        assert Op.LEAF.arity == 0
        assert Op.RBIND.arity == 2
        assert Op.ROW_SUMS.arity == 1

    def test_categories_are_disjoint(self):
        for op in Op:
            flags = [op.is_elementwise, op.is_reorganization, op.is_aggregation]
            assert sum(flags) <= 1, op

    def test_category_membership(self):
        assert Op.EWISE_ADD.is_elementwise
        assert Op.TRANSPOSE.is_reorganization
        assert Op.COL_SUMS.is_aggregation
        assert not Op.MATMUL.is_elementwise
        assert not Op.MATMUL.is_reorganization
