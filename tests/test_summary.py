"""Tests for the estimator summary statistics."""

import math

import pytest

from repro.sparsest.runner import EstimateOutcome
from repro.sparsest.summary import summarize, summary_table


def _outcome(case, estimator, error, status="ok", seconds=0.01):
    import math as m

    estimated = m.nan if status != "ok" else 10.0 * error
    return EstimateOutcome(case, estimator, 10.0, estimated, error, seconds, status)


class TestSummarize:
    def test_geometric_mean(self):
        outcomes = [
            _outcome("B1.1", "E", 2.0),
            _outcome("B1.2", "E", 8.0),
        ]
        summary = summarize(outcomes)[0]
        assert summary.geometric_mean_error == pytest.approx(4.0)

    def test_exact_count(self):
        outcomes = [
            _outcome("B1.1", "E", 1.0),
            _outcome("B1.2", "E", 1.0 + 1e-12),
            _outcome("B1.3", "E", 2.0),
        ]
        assert summarize(outcomes)[0].exact == 2

    def test_failures_excluded_from_errors(self):
        outcomes = [
            _outcome("B1.1", "E", 2.0),
            _outcome("B1.2", "E", math.inf, status="unsupported"),
        ]
        summary = summarize(outcomes)[0]
        assert summary.failures == 1
        assert summary.supported == 1
        assert summary.geometric_mean_error == pytest.approx(2.0)

    def test_wins(self):
        outcomes = [
            _outcome("B1.1", "A", 1.0),
            _outcome("B1.1", "B", 2.0),
            _outcome("B1.2", "A", 3.0),
            _outcome("B1.2", "B", 2.0),
        ]
        summaries = {s.estimator: s for s in summarize(outcomes)}
        assert summaries["A"].wins == 1
        assert summaries["B"].wins == 1

    def test_ties_count_for_both(self):
        outcomes = [
            _outcome("B1.1", "A", 1.0),
            _outcome("B1.1", "B", 1.0),
        ]
        summaries = {s.estimator: s for s in summarize(outcomes)}
        assert summaries["A"].wins == summaries["B"].wins == 1

    def test_sorted_by_geo_mean(self):
        outcomes = [
            _outcome("B1.1", "worse", 5.0),
            _outcome("B1.1", "better", 1.5),
        ]
        assert [s.estimator for s in summarize(outcomes)] == ["better", "worse"]

    def test_infinite_error_in_worst_not_mean(self):
        outcomes = [
            _outcome("B1.1", "E", 2.0),
            _outcome("B1.2", "E", math.inf),
        ]
        summary = summarize(outcomes)[0]
        assert summary.geometric_mean_error == pytest.approx(2.0)
        assert math.isinf(summary.worst_error)

    def test_all_unsupported(self):
        outcomes = [_outcome("B1.1", "E", math.inf, status="unsupported")]
        summary = summarize(outcomes)[0]
        assert math.isinf(summary.geometric_mean_error)
        assert summary.supported == 0


class TestSummaryTable:
    def test_renders(self):
        outcomes = [
            _outcome("B1.1", "MNC", 1.0),
            _outcome("B1.1", "MetaAC", 3.0),
        ]
        table = summary_table(outcomes, title="demo")
        assert "demo" in table
        assert "MNC" in table
        assert "geo-mean err" in table


class TestEndToEnd:
    def test_summary_over_real_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))
        from repro.estimators import make_estimator
        from repro.sparsest import get_use_case, run_estimators

        cases = [get_use_case("B1.2"), get_use_case("B1.4")]
        lineup = [make_estimator("mnc"), make_estimator("meta_ac")]
        outcomes = run_estimators(cases, lineup, scale=0.02)
        summaries = {s.estimator: s for s in summarize(outcomes)}
        assert summaries["MNC"].exact == 2
        assert summaries["MNC"].geometric_mean_error <= (
            summaries["MetaAC"].geometric_mean_error
        )
