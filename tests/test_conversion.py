"""Unit tests for repro.matrix.conversion."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.matrix.conversion import (
    as_csc,
    as_csr,
    boolean_structure,
    is_sparse,
    to_dense,
)


class TestAsCsr:
    def test_from_dense(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        csr = as_csr(dense)
        assert isinstance(csr, sp.csr_array)
        assert csr.nnz == 2
        assert csr.shape == (2, 2)

    def test_from_nested_lists(self):
        csr = as_csr([[0, 1], [2, 0]])
        assert csr.nnz == 2

    def test_from_1d_becomes_row_vector(self):
        csr = as_csr(np.array([1.0, 0.0, 3.0]))
        assert csr.shape == (1, 3)
        assert csr.nnz == 2

    def test_idempotent_without_copy(self):
        csr = as_csr(np.eye(3))
        again = as_csr(csr)
        assert again is csr

    def test_copy_forces_new_object(self):
        csr = as_csr(np.eye(3))
        copied = as_csr(csr, copy=True)
        assert copied is not csr
        assert (copied != csr).nnz == 0

    def test_explicit_zeros_eliminated(self):
        coo = sp.coo_array(
            (np.array([0.0, 1.0]), (np.array([0, 1]), np.array([0, 1]))),
            shape=(2, 2),
        )
        csr = as_csr(coo)
        assert csr.nnz == 1

    def test_duplicates_summed(self):
        coo = sp.coo_array(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([0, 0]))),
            shape=(1, 1),
        )
        csr = as_csr(coo)
        assert csr.nnz == 1
        assert csr.toarray()[0, 0] == 3.0

    def test_duplicates_cancelling_to_zero_removed(self):
        coo = sp.coo_array(
            (np.array([1.0, -1.0]), (np.array([0, 0]), np.array([0, 0]))),
            shape=(1, 1),
        )
        assert as_csr(coo).nnz == 0

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            as_csr(np.zeros((2, 2, 2)))

    def test_empty_matrix(self):
        csr = as_csr(np.zeros((0, 5)))
        assert csr.shape == (0, 5)
        assert csr.nnz == 0

    def test_from_csc_input(self):
        csc = sp.csc_array(np.eye(4))
        csr = as_csr(csc)
        assert isinstance(csr, sp.csr_array)
        assert csr.nnz == 4

    def test_from_spmatrix_input(self):
        legacy = sp.csr_matrix(np.eye(3))
        csr = as_csr(legacy)
        assert isinstance(csr, sp.csr_array)


class TestAsCsc:
    def test_roundtrip_structure(self):
        dense = np.array([[1, 0, 2], [0, 3, 0]])
        csc = as_csc(dense)
        assert isinstance(csc, sp.csc_array)
        np.testing.assert_array_equal(csc.toarray(), dense)

    def test_idempotent(self):
        csc = as_csc(np.eye(3))
        assert as_csc(csc) is csc

    def test_explicit_zeros_eliminated(self):
        coo = sp.coo_array(
            (np.array([0.0]), (np.array([0]), np.array([0]))), shape=(1, 2)
        )
        assert as_csc(coo).nnz == 0


class TestToDense:
    def test_from_sparse(self):
        dense = to_dense(sp.csr_array(np.eye(3)))
        np.testing.assert_array_equal(dense, np.eye(3))

    def test_from_dense_passthrough_values(self):
        src = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(to_dense(src), src)

    def test_from_1d(self):
        assert to_dense(np.array([1.0, 2.0])).shape == (1, 2)


class TestBooleanStructure:
    def test_values_become_one(self):
        structure = boolean_structure(np.array([[5.0, 0.0], [-3.0, 0.5]]))
        np.testing.assert_array_equal(
            structure.toarray(), np.array([[1, 0], [1, 1]], dtype=np.int8)
        )

    def test_dtype_is_int8(self):
        assert boolean_structure(np.eye(2)).data.dtype == np.int8


class TestIsSparse:
    def test_sparse_true(self):
        assert is_sparse(sp.csr_array((2, 2)))

    def test_dense_false(self):
        assert not is_sparse(np.eye(2))
