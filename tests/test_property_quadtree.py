"""Property-based tests for the quad-tree synopsis invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.quadtree import QuadTreeEstimator
from repro.matrix.conversion import as_csr


@st.composite
def matrices(draw, max_dim=48):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return as_csr((rng.random((m, n)) < density).astype(np.int8))


@st.composite
def estimators(draw):
    leaf_nnz = draw(st.integers(1, 64))
    min_block = draw(st.integers(1, 16))
    return QuadTreeEstimator(leaf_nnz=leaf_nnz, min_block=min_block)


class TestQuadTreeInvariants:
    @given(matrices(), estimators())
    @settings(max_examples=60, deadline=None)
    def test_root_count_exact(self, matrix, estimator):
        synopsis = estimator.build(matrix)
        assert synopsis.nnz_estimate == matrix.nnz

    @given(matrices(), estimators())
    @settings(max_examples=60, deadline=None)
    def test_leaves_partition_cells_and_counts(self, matrix, estimator):
        synopsis = estimator.build(matrix)
        leaves = synopsis.leaves()
        assert sum(leaf.cells for leaf in leaves) == matrix.shape[0] * matrix.shape[1]
        assert sum(leaf.nnz for leaf in leaves) == matrix.nnz

    @given(matrices(), estimators())
    @settings(max_examples=60, deadline=None)
    def test_leaves_are_disjoint(self, matrix, estimator):
        synopsis = estimator.build(matrix)
        regions = [
            (leaf.row_start, leaf.row_stop, leaf.col_start, leaf.col_stop)
            for leaf in synopsis.leaves()
        ]
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                rows_overlap = a[0] < b[1] and b[0] < a[1]
                cols_overlap = a[2] < b[3] and b[2] < a[3]
                assert not (rows_overlap and cols_overlap)

    @given(matrices(), estimators(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_rasterization_preserves_mass(self, matrix, estimator, block):
        synopsis = estimator.build(matrix)
        grid = synopsis.rasterize(block)
        assert grid.nnz_estimate == np.float64(matrix.nnz).item() or (
            abs(grid.nnz_estimate - matrix.nnz) < 1e-6 * max(matrix.nnz, 1)
        )

    @given(matrices(), estimators())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, matrix, estimator):
        from repro.opcodes import Op

        synopsis = estimator.build(matrix)
        twice = estimator.propagate(
            Op.TRANSPOSE, [estimator.propagate(Op.TRANSPOSE, [synopsis])]
        )
        assert twice.shape == synopsis.shape
        assert twice.nnz_estimate == synopsis.nnz_estimate
