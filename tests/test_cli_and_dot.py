"""Tests for the CLI and DAG introspection helpers."""

import numpy as np
import pytest

from repro.cli import main
from repro.estimators import make_estimator
from repro.ir import leaf, matmul, neq_zero
from repro.ir.dot import dag_stats, to_dot
from repro.matrix.io import save_matrix
from repro.matrix.random import random_sparse


@pytest.fixture
def stored_pair(tmp_path):
    a = random_sparse(40, 30, 0.2, seed=1)
    b = random_sparse(30, 35, 0.2, seed=2)
    path_a, path_b = tmp_path / "a.npz", tmp_path / "b.npz"
    save_matrix(path_a, a)
    save_matrix(path_b, b)
    return str(path_a), str(path_b)


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mnc" in out
        assert "B1.1" in out

    def test_sketch(self, stored_pair, capsys):
        path_a, _ = stored_pair
        assert main(["sketch", path_a]) == 0
        out = capsys.readouterr().out
        assert "40 x 30" in out
        assert "sketch size" in out

    def test_estimate(self, stored_pair, capsys):
        path_a, path_b = stored_pair
        assert main(["estimate", path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "MNC estimate" in out

    def test_estimate_with_exact(self, stored_pair, capsys):
        path_a, path_b = stored_pair
        assert main(["estimate", path_a, path_b, "--exact"]) == 0
        out = capsys.readouterr().out
        assert "relative error" in out

    def test_estimate_other_estimator(self, stored_pair, capsys):
        path_a, path_b = stored_pair
        assert main(["estimate", path_a, path_b, "--estimator", "meta_ac"]) == 0
        assert "MetaAC" in capsys.readouterr().out

    def test_sparsest_subset(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))
        code = main([
            "sparsest", "--cases", "B1.2,B1.4",
            "--estimators", "meta_ac,mnc", "--scale", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "B1.2" in out and "B1.4" in out
        assert "MNC" in out

    def test_optimize(self, capsys):
        code = main([
            "optimize", "--dims", "50,60,40,30",
            "--sparsities", "0.5,0.01,0.4", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparse-DP plan" in out

    def test_optimize_bad_arity(self, capsys):
        code = main([
            "optimize", "--dims", "50,60", "--sparsities", "0.5,0.5",
        ])
        assert code == 2

    def test_verify_reaches_incremental_contract(self, capsys, tmp_path):
        # The streaming contract must be selectable from the CLI and its
        # counters must surface through `repro stats` on the trace file.
        trace = str(tmp_path / "trace.jsonl")
        code = main([
            "verify", "--cells", "mnc:incremental_equals_rebuild:*",
            "--budget", "2", "--seed", "3", "--trace", trace,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "incremental_equals_rebuild" in out
        assert "0 violation(s)" in out

        assert main(["stats", trace]) == 0
        stats_out = capsys.readouterr().out
        assert "incremental.updates" in stats_out
        assert "verify.violations = 0" in stats_out


class TestCliCatalog:
    def test_warm_then_stats(self, stored_pair, capsys, tmp_path):
        path_a, path_b = stored_pair
        catalog_dir = str(tmp_path / "catalog")
        assert main(["catalog", "warm", catalog_dir, path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "2 built, 0 already cached" in out

        assert main(["catalog", "stats", catalog_dir]) == 0
        out = capsys.readouterr().out
        assert "2 sketch(es)" in out
        assert "40 x 30" in out and "30 x 35" in out

    def test_warm_skips_cached_entries(self, stored_pair, capsys, tmp_path):
        path_a, _ = stored_pair
        catalog_dir = str(tmp_path / "catalog")
        assert main(["catalog", "warm", catalog_dir, path_a]) == 0
        capsys.readouterr()
        assert main(["catalog", "warm", catalog_dir, path_a]) == 0
        out = capsys.readouterr().out
        assert "0 built, 1 already cached" in out

    def test_estimate_with_catalog_reuses_sketches(
        self, stored_pair, capsys, tmp_path
    ):
        path_a, path_b = stored_pair
        catalog_dir = str(tmp_path / "catalog")
        assert main(["catalog", "warm", catalog_dir, path_a, path_b]) == 0
        capsys.readouterr()
        assert main([
            "estimate", path_a, path_b, "--catalog", catalog_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "MNC estimate" in out
        assert "2 sketch(es) reused" in out

    def test_estimate_populates_catalog(self, stored_pair, capsys, tmp_path):
        path_a, path_b = stored_pair
        catalog_dir = tmp_path / "catalog"
        assert main([
            "estimate", path_a, path_b, "--catalog", str(catalog_dir),
        ]) == 0
        capsys.readouterr()
        assert len(list(catalog_dir.glob("*.npz"))) == 2

    def test_catalog_estimate_matches_plain(self, stored_pair, capsys, tmp_path):
        path_a, path_b = stored_pair
        assert main(["estimate", path_a, path_b]) == 0
        plain = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("MNC estimate")
        ]
        assert main([
            "estimate", path_a, path_b, "--catalog", str(tmp_path / "cat"),
        ]) == 0
        catalogued = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("MNC estimate")
        ]
        assert plain == catalogued and plain

    def test_clear(self, stored_pair, capsys, tmp_path):
        path_a, _ = stored_pair
        catalog_dir = str(tmp_path / "catalog")
        assert main(["catalog", "warm", catalog_dir, path_a]) == 0
        capsys.readouterr()
        assert main(["catalog", "clear", catalog_dir]) == 0
        assert "removed 1 sketch(es)" in capsys.readouterr().out
        assert not list((tmp_path / "catalog").glob("*.npz"))

    def test_stats_json_format(self, stored_pair, capsys, tmp_path):
        import json

        path_a, path_b = stored_pair
        catalog_dir = str(tmp_path / "catalog")
        assert main(["catalog", "warm", catalog_dir, path_a, path_b]) == 0
        capsys.readouterr()
        assert main(["catalog", "stats", catalog_dir, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert payload["skipped"] == 0
        assert payload["total_nnz"] == sum(
            entry["nnz"] for entry in payload["sketches"]
        )
        for entry in payload["sketches"]:
            assert set(entry) == {
                "fingerprint", "shape", "nnz", "bytes", "has_extensions"
            }

    def test_stats_json_skips_unreadable(self, stored_pair, capsys, tmp_path):
        import json

        path_a, _ = stored_pair
        catalog_dir = tmp_path / "catalog"
        assert main(["catalog", "warm", str(catalog_dir), path_a]) == 0
        (catalog_dir / "junk.npz").write_bytes(b"not a sketch")
        capsys.readouterr()
        assert main(["catalog", "stats", str(catalog_dir), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["skipped"] == 1

    def test_stats_missing_directory(self, capsys, tmp_path):
        code = main(["catalog", "stats", str(tmp_path / "absent")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_clear_missing_directory(self, capsys, tmp_path):
        code = main(["catalog", "clear", str(tmp_path / "absent")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestCliServe:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.shards == 8
        assert args.catalog is None
        assert args.ttl is None
        # None resolves to "mnc", or to "auto" when --tolerance is given.
        assert args.estimator is None
        assert args.tolerance is None

    def test_subprocess_boot_serve_shutdown(self, tmp_path):
        """`repro serve` binds, answers requests, persists its catalog on
        SIGINT, and exits 0 — the same lifecycle the CI smoke job drives."""
        import os
        import re
        import signal
        import subprocess
        import sys as _sys

        catalog_dir = tmp_path / "served"
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--catalog", str(catalog_dir), "--shards", "2"],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            announce = proc.stderr.readline()
            match = re.search(r"http://([\d.]+):(\d+)", announce)
            assert match, f"no announce line: {announce!r}"

            from repro.serve import ServeClient

            client = ServeClient(match.group(1), int(match.group(2)))
            try:
                assert client.healthz()["status"] == "ok"
                matrix = random_sparse(20, 15, 0.2, seed=7)
                client.register("M", matrix)
                assert client.estimate({"ref": "M"})["nnz"] == float(matrix.nnz)
            finally:
                client.close()
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        assert list(catalog_dir.glob("*.npz")), "catalog not persisted on exit"


class TestDot:
    def test_stats(self):
        a = leaf(np.ones((4, 5)), "A")
        b = leaf(np.ones((5, 4)), "B")
        root = neq_zero(matmul(a, b))
        stats = dag_stats(root)
        assert stats["nodes"] == 4
        assert stats["leaves"] == 2
        assert stats["products"] == 1
        assert stats["reorganizations"] == 1
        assert stats["depth"] == 3

    def test_shared_nodes_counted_once(self):
        shared = leaf(random_sparse(6, 6, 0.5, seed=4), "S")
        root = (shared @ shared) + (shared @ shared)
        assert dag_stats(root)["leaves"] == 1

    def test_dot_output_structure(self):
        a = leaf(np.ones((3, 4)), "A")
        b = leaf(np.ones((4, 2)), "B")
        root = matmul(a, b, name="AB")
        dot = to_dot(root)
        assert dot.startswith("digraph expression {")
        assert dot.rstrip().endswith("}")
        assert 'label="A\\n3x4"' in dot
        assert "->" in dot

    def test_dot_with_estimator_annotations(self):
        a = leaf(random_sparse(10, 10, 0.3, seed=5), "A")
        root = a @ a
        dot = to_dot(root, estimator=make_estimator("mnc"))
        assert "s~" in dot


class TestCliTrace:
    def test_sparsest_trace_and_stats(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))
        trace_file = tmp_path / "out.jsonl"
        code = main([
            "sparsest", "--cases", "B1.2,B1.4",
            "--estimators", "meta_ac,mnc", "--scale", "0.02",
            "--trace", str(trace_file),
        ])
        assert code == 0
        capsys.readouterr()
        assert trace_file.exists()

        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        # Per-span aggregate table with build/estimate spans per estimator.
        assert "Span aggregates" in out
        assert "estimator.build" in out
        assert "estimator.estimate" in out
        assert "sparsest.run" in out
        assert "MNC" in out and "MetaAC" in out
        assert "p95 [s]" in out
        # The error-vs-time report covers every (use case, estimator) pair.
        assert "Error vs time per (use case, estimator)" in out
        assert "B1.2" in out and "B1.4" in out

    def test_estimate_trace(self, stored_pair, capsys, tmp_path):
        path_a, path_b = stored_pair
        trace_file = tmp_path / "estimate.jsonl"
        assert main([
            "estimate", path_a, path_b, "--trace", str(trace_file),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "estimator.build" in out
        assert "estimator.estimate" in out

    def test_trace_file_is_valid_jsonl(self, stored_pair, tmp_path):
        import json

        path_a, path_b = stored_pair
        trace_file = tmp_path / "estimate.jsonl"
        assert main([
            "estimate", path_a, path_b, "--trace", str(trace_file),
        ]) == 0
        lines = trace_file.read_text().strip().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert "type" in record

    def test_untraced_run_leaves_null_collector(self, capsys):
        from repro.observability import NullCollector, get_collector

        assert main(["info"]) == 0
        capsys.readouterr()
        assert isinstance(get_collector(), NullCollector)

    def test_unwritable_trace_path_reports_cleanly(self, stored_pair, capsys):
        path_a, path_b = stored_pair
        code = main([
            "estimate", path_a, path_b,
            "--trace", "/nonexistent-dir/out.jsonl",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "MNC estimate" in captured.out  # the command itself ran
        assert "cannot write trace file" in captured.err

    def test_stats_missing_file(self, capsys, tmp_path):
        code = main(["stats", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stats_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        code = main(["stats", str(bad)])
        assert code == 2
        assert "malformed" in capsys.readouterr().err

    def test_stats_empty_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 0
        assert "no records" in capsys.readouterr().out


class TestCliParseErrors:
    def test_optimize_unparseable_dims(self, capsys):
        code = main([
            "optimize", "--dims", "50,abc,40", "--sparsities", "0.5,0.5",
        ])
        assert code == 2
        assert "could not parse" in capsys.readouterr().err
