"""Unit tests for the density map estimator."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.estimators.density_map import DensityMapEstimator, _block_sizes
from repro.matrix import ops as mops
from repro.matrix.random import outer_product_pair, random_sparse
from repro.opcodes import Op


@pytest.fixture
def dmap():
    return DensityMapEstimator(block_size=16)


class TestBlockSizes:
    def test_even_division(self):
        np.testing.assert_array_equal(_block_sizes(64, 16), [16, 16, 16, 16])

    def test_remainder_block(self):
        np.testing.assert_array_equal(_block_sizes(70, 16), [16, 16, 16, 16, 6])

    def test_zero_dim(self):
        assert _block_sizes(0, 16).size == 0

    def test_dim_smaller_than_block(self):
        np.testing.assert_array_equal(_block_sizes(5, 16), [5])


class TestBuild:
    def test_density_grid_values(self, dmap):
        matrix = np.zeros((32, 32))
        matrix[:16, :16] = 1.0  # block (0,0) fully dense
        synopsis = dmap.build(matrix)
        assert synopsis.density[0, 0] == pytest.approx(1.0)
        assert synopsis.density[1, 1] == pytest.approx(0.0)

    def test_nnz_recovered_exactly(self, dmap):
        matrix = random_sparse(50, 70, 0.2, seed=1)
        synopsis = dmap.build(matrix)
        assert synopsis.nnz_estimate == pytest.approx(matrix.nnz)

    def test_block_one_is_bitset_granularity(self):
        estimator = DensityMapEstimator(block_size=1)
        matrix = random_sparse(10, 10, 0.3, seed=2)
        synopsis = estimator.build(matrix)
        assert synopsis.density.shape == (10, 10)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            DensityMapEstimator(block_size=0)

    def test_size_shrinks_quadratically(self):
        matrix = random_sparse(128, 128, 0.1, seed=3)
        fine = DensityMapEstimator(block_size=8).build(matrix)
        coarse = DensityMapEstimator(block_size=64).build(matrix)
        assert fine.size_bytes() > coarse.size_bytes()


class TestProducts:
    def test_uniform_random_accurate(self, dmap):
        a = random_sparse(200, 150, 0.05, seed=4)
        b = random_sparse(150, 180, 0.05, seed=5)
        truth = mops.matmul(a, b).nnz
        estimate = dmap.estimate_nnz(Op.MATMUL, [dmap.build(a), dmap.build(b)])
        assert truth / 1.15 <= estimate <= truth * 1.15

    def test_block_size_one_exactish_on_block_structure(self):
        estimator = DensityMapEstimator(block_size=1)
        a = np.zeros((12, 12))
        a[2, 3] = 1
        a[5, 7] = 1
        b = np.eye(12)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == pytest.approx(2.0)

    def test_fails_on_outer_product_structure(self, dmap):
        # The paper's B1.4: square blocks cannot represent a dense column
        # meeting a dense row, so the estimate is far below n*n.
        column, row = outer_product_pair(64)
        estimate = dmap.estimate_nnz(
            Op.MATMUL, [dmap.build(column), dmap.build(row)]
        )
        assert estimate < 64 * 64 / 2

    def test_mismatched_block_sizes_rejected(self):
        a = DensityMapEstimator(block_size=8).build(np.eye(16))
        b = DensityMapEstimator(block_size=16).build(np.eye(16))
        with pytest.raises(ShapeError):
            DensityMapEstimator(block_size=8).estimate_nnz(Op.MATMUL, [a, b])

    def test_smaller_blocks_can_raise_error_on_column_structure(self):
        # Paper Section 2.2 observation: with a single dense column and a
        # dense right operand, smaller block sizes estimate *more*
        # collisions and hence fewer non-zeros.
        a = np.zeros((200, 100))
        a[:50, 0] = 1.0
        b = np.ones((100, 100))
        estimates = {}
        for block in (200, 50):
            est = DensityMapEstimator(block_size=block)
            estimates[block] = est.estimate_nnz(
                Op.MATMUL, [est.build(a), est.build(b)]
            )
        truth = 50 * 100
        assert abs(estimates[200] - truth) < abs(estimates[50] - truth)


class TestOtherOps:
    def test_ewise_add(self, dmap):
        a = random_sparse(40, 40, 0.2, seed=6)
        b = random_sparse(40, 40, 0.2, seed=7)
        truth = mops.ewise_add(a, b).nnz
        estimate = dmap.estimate_nnz(Op.EWISE_ADD, [dmap.build(a), dmap.build(b)])
        assert truth / 1.2 <= estimate <= truth * 1.2

    def test_ewise_mult_block_average(self, dmap):
        a = random_sparse(40, 40, 0.3, seed=8)
        b = random_sparse(40, 40, 0.3, seed=9)
        truth = mops.ewise_mult(a, b).nnz
        estimate = dmap.estimate_nnz(Op.EWISE_MULT, [dmap.build(a), dmap.build(b)])
        assert truth / 2 <= estimate <= truth * 2

    def test_transpose_exact(self, dmap):
        matrix = random_sparse(30, 50, 0.2, seed=10)
        result = dmap.propagate(Op.TRANSPOSE, [dmap.build(matrix)])
        assert result.nnz_estimate == pytest.approx(matrix.nnz)
        assert result.shape == (50, 30)

    def test_eq_zero(self, dmap):
        matrix = random_sparse(20, 20, 0.4, seed=11)
        result = dmap.propagate(Op.EQ_ZERO, [dmap.build(matrix)])
        assert result.nnz_estimate == pytest.approx(400 - matrix.nnz)

    def test_diag_v2m(self, dmap):
        v = np.ones((40, 1))
        v[5] = 0.0
        result = dmap.propagate(Op.DIAG_V2M, [dmap.build(v)])
        assert result.shape == (40, 40)
        assert result.nnz_estimate == pytest.approx(39.0)

    def test_diag_m2v(self, dmap):
        matrix = np.eye(32)
        result = dmap.propagate(Op.DIAG_M2V, [dmap.build(matrix)])
        assert result.shape == (32, 1)
        # Block density of diagonal blocks is 1/16, so the average-case
        # estimate of the diagonal count is 32/16 = 2.
        assert result.nnz_estimate == pytest.approx(2.0)

    def test_rbind_aligned_exact(self, dmap):
        a = random_sparse(32, 16, 0.3, seed=12)
        b = random_sparse(16, 16, 0.3, seed=13)
        result = dmap.propagate(Op.RBIND, [dmap.build(a), dmap.build(b)])
        assert result.nnz_estimate == pytest.approx(a.nnz + b.nnz, rel=1e-9)
        assert result.shape == (48, 16)

    def test_rbind_misaligned_preserves_total(self, dmap):
        a = random_sparse(13, 16, 0.3, seed=14)
        b = random_sparse(9, 16, 0.3, seed=15)
        result = dmap.propagate(Op.RBIND, [dmap.build(a), dmap.build(b)])
        assert result.nnz_estimate == pytest.approx(a.nnz + b.nnz, rel=0.01)

    def test_cbind_misaligned_preserves_total(self, dmap):
        a = random_sparse(16, 13, 0.3, seed=16)
        b = random_sparse(16, 6, 0.3, seed=17)
        result = dmap.propagate(Op.CBIND, [dmap.build(a), dmap.build(b)])
        assert result.nnz_estimate == pytest.approx(a.nnz + b.nnz, rel=0.01)
        assert result.shape == (16, 19)

    def test_reshape_preserves_total_loses_structure(self, dmap):
        matrix = random_sparse(32, 16, 0.25, seed=18)
        result = dmap.propagate(Op.RESHAPE, [dmap.build(matrix)], rows=16, cols=32)
        assert result.nnz_estimate == pytest.approx(matrix.nnz, rel=0.01)
        assert result.shape == (16, 32)


class TestAutoBlockSize:
    def test_auto_resolves_on_first_build(self):
        from repro.estimators.density_map import DensityMapEstimator, auto_block_size

        estimator = DensityMapEstimator(block_size="auto")
        matrix = random_sparse(512, 512, 0.1, seed=30)
        estimator.build(matrix)
        assert estimator.block_size == auto_block_size(512, 512)

    def test_small_matrices_get_cell_exact_maps(self):
        from repro.estimators.density_map import auto_block_size

        assert auto_block_size(10, 10) == 1
        assert auto_block_size(64, 64) == 1

    def test_large_matrices_capped_at_default(self):
        from repro.estimators.density_map import DEFAULT_BLOCK_SIZE, auto_block_size

        assert auto_block_size(10**6, 10**6) == DEFAULT_BLOCK_SIZE

    def test_auto_products_work(self):
        from repro.estimators.density_map import DensityMapEstimator

        estimator = DensityMapEstimator(block_size="auto")
        a = random_sparse(128, 96, 0.1, seed=31)
        b = random_sparse(96, 100, 0.1, seed=32)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 1.3 <= estimate <= truth * 1.3

    def test_auto_improves_on_small_skewed_inputs(self):
        # The Covertype failure mode: 54 columns vs a 256-block default.
        from repro.estimators.density_map import DensityMapEstimator
        from repro.matrix.random import one_hot_block
        import numpy as np
        import scipy.sparse as sp
        from repro.matrix.conversion import as_csr
        from repro.matrix.random import selection_matrix

        rng = np.random.default_rng(33)
        x = as_csr(sp.hstack([
            sp.csr_matrix(as_csr(rng.random((2000, 10)) + 0.1)),
            sp.csr_matrix(one_hot_block(2000, 44, seed=rng)),
        ], format="csr"))
        p = as_csr(selection_matrix(list(range(11, 51)), 54).transpose())
        truth = mops.matmul(x, p).nnz
        errors = {}
        for label, block in (("auto", "auto"), ("default", 256)):
            estimator = DensityMapEstimator(block_size=block)
            estimate = estimator.estimate_nnz(
                Op.MATMUL, [estimator.build(x), estimator.build(p)]
            )
            errors[label] = max(truth, estimate) / min(truth, estimate)
        assert errors["auto"] <= errors["default"]

    def test_invalid_block_size_string(self):
        from repro.estimators.density_map import DensityMapEstimator

        with pytest.raises(ValueError):
            DensityMapEstimator(block_size="huge")
