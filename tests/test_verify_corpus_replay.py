"""Replay of the persisted fuzz corpus (tests/corpus/*.json + .npz).

Every reproducer pins either a fixed bug or a boundary behavior: the replay
must pass (contract holds) or the regression is back.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify import (
    Reproducer,
    iter_corpus,
    load_reproducer,
    replay_reproducer,
    save_reproducer,
)

CORPUS_DIR = Path(__file__).parent / "corpus"

CORPUS = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_seeded():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize(
    "reproducer", CORPUS, ids=[rep.name for rep in CORPUS]
)
def test_corpus_replay_passes(reproducer):
    failure = replay_reproducer(reproducer)
    assert failure is None, (
        f"corpus regression {reproducer.name} "
        f"({reproducer.estimator} x {reproducer.contract}): {failure}\n"
        f"note: {reproducer.note}"
    )


def test_corpus_files_are_paired():
    for json_path in CORPUS_DIR.glob("*.json"):
        assert json_path.with_suffix(".npz").exists(), (
            f"{json_path.name} has no matching .npz"
        )


def test_reproducer_roundtrip(tmp_path):
    original = CORPUS[0]
    path = save_reproducer(original, tmp_path)
    loaded = load_reproducer(path)
    assert loaded.name == original.name
    assert loaded.estimator == original.estimator
    assert loaded.contract == original.contract
    assert loaded.root.shape == original.root.shape
    assert loaded.root.op == original.root.op
    # Leaf structure survives exactly.
    for a, b in zip(loaded.root.leaves(), original.root.leaves()):
        assert a.shape == b.shape
        assert a.matrix.nnz == b.matrix.nnz
    assert replay_reproducer(loaded) is None


def test_load_accepts_bare_name():
    first = sorted(CORPUS_DIR.glob("*.json"))[0]
    loaded = load_reproducer(first.with_suffix(""))
    assert isinstance(loaded, Reproducer)


def test_dag_sharing_survives_roundtrip(tmp_path):
    import scipy.sparse as sp

    from repro.ir import nodes as ir
    from repro.matrix.random import random_sparse

    x = ir.leaf(random_sparse(6, 6, 0.4, seed=1), name="X")
    shared = x @ x
    rep = Reproducer(
        name="shared-product",
        estimator="exact",
        contract="exact_oracle",
        root=ir.ewise_add(shared, ir.transpose(shared)),
    )
    loaded = load_reproducer(save_reproducer(rep, tmp_path))
    nodes = list(loaded.root.postorder())
    # X and X@X each appear once: 1 leaf + matmul + transpose + ewise_add.
    assert len(nodes) == 4
    assert replay_reproducer(loaded) is None
