"""Tests for distributed (partitioned) MNC sketch construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.distributed import (
    merge_col_partitions,
    merge_partitions,
    merge_row_partitions,
    sketch_partitioned,
)
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.matrix.conversion import as_csr
from repro.matrix.random import random_sparse


def _split_rows(matrix, parts):
    boundaries = np.linspace(0, matrix.shape[0], parts + 1).astype(int)
    return [matrix[s:e] for s, e in zip(boundaries, boundaries[1:])]


class TestRowMerge:
    def test_counts_match_full_sketch(self):
        matrix = random_sparse(60, 40, 0.1, seed=1)
        shards = [MNCSketch.from_matrix(s) for s in _split_rows(matrix, 3)]
        merged = merge_row_partitions(shards)
        full = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)
        assert merged.total_nnz == full.total_nnz
        assert merged.shape == full.shape

    def test_hec_merges_exactly_when_present(self):
        matrix = random_sparse(40, 30, 0.2, seed=2)
        shards = [MNCSketch.from_matrix(s) for s in _split_rows(matrix, 2)]
        merged = merge_row_partitions(shards)
        full = MNCSketch.from_matrix(matrix)
        if merged.hec is not None and full.hec is not None:
            np.testing.assert_array_equal(merged.hec, full.hec)

    def test_single_shard(self):
        matrix = random_sparse(10, 8, 0.4, seed=3)
        merged = merge_row_partitions([MNCSketch.from_matrix(matrix)])
        assert merged.total_nnz == matrix.nnz

    def test_zero_row_shard(self):
        matrix = random_sparse(12, 9, 0.3, seed=8)
        empty = MNCSketch.from_matrix(sp.csr_array((0, 9)))
        merged = merge_row_partitions([empty, MNCSketch.from_matrix(matrix)])
        full = MNCSketch.from_matrix(matrix)
        assert merged.shape == (12, 9)
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)

    def test_all_zero_shard(self):
        matrix = random_sparse(12, 9, 0.3, seed=9)
        zero = MNCSketch.from_matrix(np.zeros((5, 9)))
        merged = merge_row_partitions([MNCSketch.from_matrix(matrix), zero])
        assert merged.shape == (17, 9)
        assert merged.total_nnz == matrix.nnz
        np.testing.assert_array_equal(merged.hr[12:], np.zeros(5, dtype=np.int64))

    def test_mismatched_columns_rejected(self):
        a = MNCSketch.from_matrix(np.ones((2, 3)))
        b = MNCSketch.from_matrix(np.ones((2, 4)))
        with pytest.raises(SketchError, match="column count"):
            merge_row_partitions([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(SketchError, match="empty list"):
            merge_row_partitions([])


class TestColMerge:
    def test_counts_match_full_sketch(self):
        matrix = random_sparse(40, 60, 0.1, seed=4)
        boundaries = np.linspace(0, 60, 4).astype(int)
        shards = [
            MNCSketch.from_matrix(as_csr(matrix[:, s:e]))
            for s, e in zip(boundaries, boundaries[1:])
        ]
        merged = merge_col_partitions(shards)
        full = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)

    def test_single_shard(self):
        matrix = random_sparse(10, 8, 0.4, seed=10)
        merged = merge_col_partitions([MNCSketch.from_matrix(matrix)])
        assert merged.total_nnz == matrix.nnz
        assert merged.shape == (10, 8)

    def test_zero_column_shard(self):
        matrix = random_sparse(9, 12, 0.3, seed=11)
        empty = MNCSketch.from_matrix(sp.csr_array((9, 0)))
        merged = merge_col_partitions([MNCSketch.from_matrix(matrix), empty])
        full = MNCSketch.from_matrix(matrix)
        assert merged.shape == (9, 12)
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)

    def test_all_zero_shard(self):
        matrix = random_sparse(9, 12, 0.3, seed=12)
        zero = MNCSketch.from_matrix(np.zeros((9, 4)))
        merged = merge_col_partitions([zero, MNCSketch.from_matrix(matrix)])
        assert merged.shape == (9, 16)
        assert merged.total_nnz == matrix.nnz
        np.testing.assert_array_equal(merged.hc[:4], np.zeros(4, dtype=np.int64))

    def test_mismatched_rows_rejected(self):
        a = MNCSketch.from_matrix(np.ones((2, 3)))
        b = MNCSketch.from_matrix(np.ones((3, 3)))
        with pytest.raises(SketchError, match="row count"):
            merge_col_partitions([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(SketchError, match="empty list"):
            merge_col_partitions([])


class TestMergePartitions:
    """Degenerate inputs for the serving-ingest merge entry point."""

    def test_single_shard_is_identity_modulo_extensions(self):
        matrix = random_sparse(14, 11, 0.3, seed=20)
        merged = merge_partitions([MNCSketch.from_matrix(matrix)], axis=0)
        full = MNCSketch.from_matrix(matrix)
        assert merged.shape == full.shape
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)

    @pytest.mark.parametrize("axis", [0, 1])
    def test_empty_list_rejected(self, axis):
        with pytest.raises(SketchError, match="empty list"):
            merge_partitions([], axis=axis)

    def test_invalid_axis_rejected(self):
        sketch = MNCSketch.from_matrix(np.ones((2, 2)))
        with pytest.raises(SketchError, match="axis"):
            merge_partitions([sketch], axis=2)

    def test_mismatched_cross_dimensions_rejected(self):
        wide = MNCSketch.from_matrix(np.ones((3, 5)))
        narrow = MNCSketch.from_matrix(np.ones((3, 4)))
        with pytest.raises(SketchError, match="column count"):
            merge_partitions([wide, narrow], axis=0)
        tall = MNCSketch.from_matrix(np.ones((4, 3)))
        short = MNCSketch.from_matrix(np.ones((5, 3)))
        with pytest.raises(SketchError, match="row count"):
            merge_partitions([tall, short], axis=1)

    def test_out_of_order_shard_arrival(self):
        matrix = random_sparse(30, 20, 0.2, seed=21)
        top, middle, bottom = matrix[:10], matrix[10:20], matrix[20:]
        # Shards arrive bottom, top, middle; indices name logical order.
        merged = merge_partitions(
            [MNCSketch.from_matrix(s) for s in (bottom, top, middle)],
            axis=0,
            indices=[2, 0, 1],
        )
        full = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(merged.hr, full.hr)
        np.testing.assert_array_equal(merged.hc, full.hc)

    def test_out_of_order_col_shards(self):
        matrix = random_sparse(20, 30, 0.2, seed=22)
        left, right = as_csr(matrix[:, :15]), as_csr(matrix[:, 15:])
        merged = merge_partitions(
            [MNCSketch.from_matrix(right), MNCSketch.from_matrix(left)],
            axis=1,
            indices=[1, 0],
        )
        full = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(merged.hc, full.hc)
        np.testing.assert_array_equal(merged.hr, full.hr)

    def test_bad_indices_rejected(self):
        shards = [
            MNCSketch.from_matrix(np.ones((2, 3))),
            MNCSketch.from_matrix(np.ones((2, 3))),
        ]
        with pytest.raises(SketchError, match="permutation"):
            merge_partitions(shards, axis=0, indices=[0, 0])
        with pytest.raises(SketchError, match="permutation"):
            merge_partitions(shards, axis=0, indices=[1, 2])
        with pytest.raises(SketchError, match="permutation"):
            merge_partitions(shards, axis=0, indices=[0])


class TestSketchPartitioned:
    @pytest.mark.parametrize("axis", [0, 1])
    @pytest.mark.parametrize("parts", [1, 3, 7])
    def test_equivalent_to_direct_construction(self, axis, parts):
        matrix = random_sparse(50, 35, 0.15, seed=5)
        distributed = sketch_partitioned(matrix, axis=axis, num_partitions=parts)
        direct = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(distributed.hr, direct.hr)
        np.testing.assert_array_equal(distributed.hc, direct.hc)

    def test_estimates_agree_with_direct(self):
        from repro.core.estimate import estimate_product_nnz

        a = random_sparse(60, 45, 0.1, seed=6)
        b = random_sparse(45, 50, 0.1, seed=7)
        direct = estimate_product_nnz(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        )
        distributed = estimate_product_nnz(
            sketch_partitioned(a, axis=0, num_partitions=4),
            sketch_partitioned(b, axis=1, num_partitions=4),
        )
        # Counts match exactly; only extension availability can differ.
        assert distributed == pytest.approx(direct, rel=0.05)

    def test_invalid_arguments(self):
        matrix = np.ones((4, 4))
        with pytest.raises(SketchError):
            sketch_partitioned(matrix, axis=2)
        with pytest.raises(SketchError):
            sketch_partitioned(matrix, num_partitions=0)
