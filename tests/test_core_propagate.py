"""Unit tests for MNC sketch propagation over products (Eq 11-12)."""

import numpy as np
import pytest

from repro.core.propagate import propagate_product, scale_histogram
from repro.core.sketch import MNCSketch
from repro.matrix.ops import matmul
from repro.matrix.random import (
    diagonal_matrix,
    permutation_matrix,
    random_sparse,
    single_nnz_per_row,
)


class TestScaleHistogram:
    def test_preserves_total_in_expectation(self, rng):
        histogram = np.array([10, 0, 5, 20], dtype=np.int64)
        totals = [
            scale_histogram(histogram, 70.0, maximum=100, rng=rng).sum()
            for _ in range(300)
        ]
        assert 67 < np.mean(totals) < 73

    def test_zero_entries_stay_zero(self, rng):
        histogram = np.array([10, 0, 5], dtype=np.int64)
        scaled = scale_histogram(histogram, 30.0, maximum=100, rng=rng)
        assert scaled[1] == 0

    def test_zero_target(self, rng):
        histogram = np.array([3, 4], dtype=np.int64)
        assert scale_histogram(histogram, 0.0, maximum=10, rng=rng).sum() == 0

    def test_respects_maximum(self, rng):
        histogram = np.array([1, 1], dtype=np.int64)
        scaled = scale_histogram(histogram, 1000.0, maximum=7, rng=rng)
        assert scaled.max() <= 7


class TestPropagation:
    def test_output_sketch_is_consistent(self, rng):
        a = random_sparse(80, 60, 0.1, seed=1)
        b = random_sparse(60, 70, 0.1, seed=2)
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        assert sketch.shape == (80, 70)
        assert sketch.hr.sum() == sketch.hc.sum() == sketch.total_nnz

    def test_total_close_to_truth(self, rng):
        a = random_sparse(200, 150, 0.05, seed=3)
        b = random_sparse(150, 180, 0.05, seed=4)
        truth = matmul(a, b).nnz
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        assert truth / 1.2 <= sketch.total_nnz <= truth * 1.2

    def test_diagonal_right_identity(self, rng):
        a = random_sparse(50, 40, 0.2, seed=5)
        d = diagonal_matrix(40, seed=6)
        h_a = MNCSketch.from_matrix(a)
        result = propagate_product(h_a, MNCSketch.from_matrix(d), rng=rng)
        assert result is h_a  # Eq 12: exact shallow propagation

    def test_diagonal_left_identity(self, rng):
        d = diagonal_matrix(50, seed=7)
        b = random_sparse(50, 40, 0.2, seed=8)
        h_b = MNCSketch.from_matrix(b)
        result = propagate_product(MNCSketch.from_matrix(d), h_b, rng=rng)
        assert result is h_b

    def test_permutation_left_preserves_totals(self, rng):
        # The *estimate* is exact (Theorem 3.1); the propagated histogram is
        # probabilistically rounded, so the total matches within noise.
        p = permutation_matrix(60, seed=9)
        x = random_sparse(60, 30, 0.25, seed=10)
        sketch = propagate_product(
            MNCSketch.from_matrix(p), MNCSketch.from_matrix(x), rng=rng
        )
        assert abs(sketch.total_nnz - x.nnz) <= 0.1 * x.nnz

    def test_empty_product(self, rng):
        a = np.zeros((10, 5))
        b = random_sparse(5, 8, 0.5, seed=11)
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        assert sketch.total_nnz == 0

    def test_histogram_shape_follows_inputs(self, rng):
        # Rows of A with more non-zeros should map to rows of C with more.
        a = np.zeros((4, 50))
        a[0, :40] = 1  # heavy row
        a[1, :2] = 1
        a[2, 2:4] = 1
        b = random_sparse(50, 60, 0.3, seed=12)
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        assert sketch.hr[0] > sketch.hr[1]
        assert sketch.hr[3] == 0  # empty row stays empty

    def test_chain_propagation_three_matrices(self, rng):
        a = single_nnz_per_row(100, 80, seed=13)
        b = random_sparse(80, 60, 0.1, seed=14)
        c = random_sparse(60, 50, 0.1, seed=15)
        h_ab = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        h_abc = propagate_product(h_ab, MNCSketch.from_matrix(c), rng=rng)
        truth = matmul(matmul(a, b), c).nnz
        assert truth / 1.5 <= max(h_abc.total_nnz, 1) <= truth * 1.5

    def test_probabilistic_rounding_unbiased_for_ultra_sparse(self):
        # Eq 11 with deterministic rounding would zero out everything.
        a = random_sparse(400, 400, 0.002, seed=16)
        b = random_sparse(400, 400, 0.002, seed=17)
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        totals = [
            propagate_product(h_a, h_b, rng=np.random.default_rng(s)).total_nnz
            for s in range(50)
        ]
        truth = matmul(a, b).nnz
        assert truth * 0.5 < np.mean(totals) < truth * 1.5
        assert any(t > 0 for t in totals)

    def test_exact_flag_cleared_for_generic_products(self, rng):
        a = random_sparse(30, 30, 0.3, seed=18)
        b = random_sparse(30, 30, 0.3, seed=19)
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b), rng=rng
        )
        assert not sketch.exact

    def test_exact_flag_kept_for_theorem31(self, rng):
        p = permutation_matrix(30, seed=20)
        x = random_sparse(30, 20, 0.3, seed=21)
        sketch = propagate_product(
            MNCSketch.from_matrix(p), MNCSketch.from_matrix(x), rng=rng
        )
        assert sketch.exact
