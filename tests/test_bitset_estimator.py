"""Unit tests for the bitset estimator: it must be exact on everything."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.estimators.bitset import BitsetEstimator, pack_matrix
from repro.matrix import ops as mops
from repro.matrix.random import random_sparse
from repro.opcodes import Op


@pytest.fixture(params=["vectorized", "scalar"])
def estimator(request):
    return BitsetEstimator(kernel=request.param)


class TestPacking:
    def test_pack_counts_bits(self):
        matrix = random_sparse(30, 45, 0.2, seed=1)
        synopsis = pack_matrix(matrix)
        assert synopsis.nnz_estimate == matrix.nnz
        assert synopsis.shape == (30, 45)

    def test_pack_unpack_roundtrip(self):
        matrix = random_sparse(20, 37, 0.3, seed=2)
        synopsis = pack_matrix(matrix)
        assert_structure_equal(synopsis.to_csr(), matrix)

    def test_size_is_packed(self):
        synopsis = pack_matrix(random_sparse(64, 64, 0.5, seed=3))
        assert synopsis.size_bytes() == 64 * 8  # 64 rows x 8 bytes

    def test_non_multiple_of_eight_columns(self):
        matrix = random_sparse(10, 13, 0.4, seed=4)
        assert_structure_equal(pack_matrix(matrix).to_csr(), matrix)

    def test_empty_matrix(self):
        synopsis = pack_matrix(np.zeros((5, 9)))
        assert synopsis.nnz_estimate == 0


class TestExactness:
    def test_matmul_exact(self, estimator):
        a = random_sparse(40, 30, 0.15, seed=5)
        b = random_sparse(30, 50, 0.15, seed=6)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == mops.matmul(a, b).nnz

    def test_matmul_structure_exact(self, estimator):
        a = random_sparse(25, 18, 0.2, seed=7)
        b = random_sparse(18, 22, 0.25, seed=8)
        result = estimator.propagate(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert_structure_equal(result.to_csr(), mops.matmul(a, b))

    def test_ewise_exact(self, estimator):
        a = random_sparse(20, 20, 0.3, seed=9)
        b = random_sparse(20, 20, 0.3, seed=10)
        sa, sb = estimator.build(a), estimator.build(b)
        assert estimator.estimate_nnz(Op.EWISE_ADD, [sa, sb]) == mops.ewise_add(a, b).nnz
        assert estimator.estimate_nnz(Op.EWISE_MULT, [sa, sb]) == mops.ewise_mult(a, b).nnz

    def test_transpose_exact(self, estimator):
        a = random_sparse(9, 17, 0.3, seed=11)
        result = estimator.propagate(Op.TRANSPOSE, [estimator.build(a)])
        assert_structure_equal(result.to_csr(), mops.transpose(a))

    def test_reshape_exact(self, estimator):
        a = random_sparse(12, 10, 0.3, seed=12)
        result = estimator.propagate(Op.RESHAPE, [estimator.build(a)], rows=8, cols=15)
        assert_structure_equal(result.to_csr(), mops.reshape_rowwise(a, 8, 15))

    def test_eq_zero_exact_with_padding_bits(self, estimator):
        # 13 columns: the last byte has 3 padding bits that must not be
        # counted after complementing.
        a = random_sparse(10, 13, 0.4, seed=13)
        result = estimator.propagate(Op.EQ_ZERO, [estimator.build(a)])
        assert result.nnz_estimate == 10 * 13 - a.nnz
        assert_structure_equal(result.to_csr(), mops.equals_zero(a))

    def test_binds_exact(self, estimator):
        a = random_sparse(6, 9, 0.4, seed=14)
        b = random_sparse(4, 9, 0.4, seed=15)
        result = estimator.propagate(Op.RBIND, [estimator.build(a), estimator.build(b)])
        assert_structure_equal(result.to_csr(), mops.rbind(a, b))
        c = random_sparse(6, 5, 0.4, seed=16)
        result = estimator.propagate(Op.CBIND, [estimator.build(a), estimator.build(c)])
        assert_structure_equal(result.to_csr(), mops.cbind(a, c))

    def test_diag_exact(self, estimator):
        v = np.array([[1.0], [0.0], [2.0]])
        result = estimator.propagate(Op.DIAG_V2M, [estimator.build(v)])
        assert_structure_equal(result.to_csr(), mops.diag_matrix(v))

    def test_chain_of_products_exact(self, estimator):
        a = random_sparse(20, 15, 0.2, seed=17)
        b = random_sparse(15, 18, 0.2, seed=18)
        c = random_sparse(18, 12, 0.2, seed=19)
        ab = estimator.propagate(Op.MATMUL, [estimator.build(a), estimator.build(b)])
        abc = estimator.estimate_nnz(Op.MATMUL, [ab, estimator.build(c)])
        assert abc == mops.matmul(mops.matmul(a, b), c).nnz


class TestKernels:
    def test_kernels_agree(self):
        a = random_sparse(30, 25, 0.2, seed=20)
        b = random_sparse(25, 35, 0.2, seed=21)
        results = []
        for kernel in ("vectorized", "scalar"):
            est = BitsetEstimator(kernel=kernel)
            results.append(
                est.estimate_nnz(Op.MATMUL, [est.build(a), est.build(b)])
            )
        assert results[0] == results[1]

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            BitsetEstimator(kernel="simd")
