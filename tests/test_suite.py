"""Tests for the one-call suite runner."""

import pytest

from repro.sparsest.suite import DEFAULT_LINEUP, SuiteResult, run_suite


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))


class TestRunSuite:
    def test_subset_run(self):
        result = run_suite(
            estimator_names=("meta_ac", "mnc"),
            case_ids=("B1.2", "B1.4"),
            scale=0.02,
        )
        assert isinstance(result, SuiteResult)
        assert len(result.outcomes) == 4
        assert {summary.estimator for summary in result.summaries} == {
            "MetaAC", "MNC"
        }

    def test_render_contains_all_tables(self):
        result = run_suite(
            estimator_names=("mnc",), case_ids=("B1.2",), scale=0.02
        )
        text = result.render()
        assert "relative errors" in text
        assert "Estimation time" in text
        assert "Per-estimator summary" in text

    def test_repetitions_aggregate(self):
        result = run_suite(
            estimator_names=("mnc",), case_ids=("B1.2",),
            scale=0.02, repetitions=2,
        )
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.relative_error == pytest.approx(1.0)
        assert result.repetitions == 2

    def test_default_lineup_names_resolve(self):
        from repro.estimators import available_estimators

        for name in DEFAULT_LINEUP:
            assert name in available_estimators()

    def test_mnc_dominates_small_subset(self):
        result = run_suite(
            estimator_names=("meta_wc", "mnc"),
            case_ids=("B1.1", "B1.4", "B1.5"),
            scale=0.02,
        )
        summaries = {summary.estimator: summary for summary in result.summaries}
        assert summaries["MNC"].exact == 3
        assert (
            summaries["MNC"].geometric_mean_error
            <= summaries["MetaWC"].geometric_mean_error
        )
