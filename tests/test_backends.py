"""Backend registry, kernel primitives, and the bit-identity contract.

The dispatch layer (``repro.backends``) promises that every backend —
the vectorized numpy reference, the numba-compiled kernels, and the
plain-Python debug backend that runs the same kernel definitions
uninterpreted — produces **byte-identical** results. This module tests
the registry semantics (selection, graceful fallback, warmup) and the
identity promise at three levels: primitive-by-primitive on adversarial
inputs, end-to-end through the estimation drivers, and via the
RNG-stream contract (draws happen in the driver, never in a kernel).

The compiled numba backend itself is exercised in CI's ``backends``
job; here it participates automatically whenever numba is installed via
the ``kernel_backends`` parametrization.
"""

import numpy as np
import pytest

from repro import backends
from repro.backends import registry as breg
from repro.backends.base import BackendUnavailable
from repro.backends.jit_backend import KernelBackend, NumbaBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.core.estimate import density_map_vector_estimate
from repro.core.propagate import propagate_product, scale_histogram
from repro.core.rounding import probabilistic_round
from repro.core.serialize import sketch_to_arrays
from repro.core.sketch import MNCSketch
from repro.estimators.bitset import BitsetEstimator, pack_matrix
from repro.matrix.random import random_sparse
from repro.observability.metrics import metrics_snapshot


def _kernel_backend_names():
    names = ["python"]
    if backends.numba_importable():
        names.append("numba")
    return names


@pytest.fixture
def registry_state(monkeypatch):
    """Snapshot and restore the registry's process-wide state."""
    saved_active = breg._ACTIVE
    saved_warned = set(breg._WARNED)
    saved_instances = dict(breg._INSTANCES)
    saved_factories = dict(breg._FACTORIES)
    saved_probes = dict(breg._PROBES)
    monkeypatch.delenv(breg.BACKEND_ENV, raising=False)
    yield
    breg._ACTIVE = saved_active
    breg._WARNED.clear()
    breg._WARNED.update(saved_warned)
    breg._INSTANCES.clear()
    breg._INSTANCES.update(saved_instances)
    breg._FACTORIES.clear()
    breg._FACTORIES.update(saved_factories)
    breg._PROBES.clear()
    breg._PROBES.update(saved_probes)


def _counter(name):
    return metrics_snapshot().counters.get(name, 0.0)


class TestRegistry:
    def test_builtins_registered(self, registry_state):
        availability = backends.available_backends()
        assert availability["numpy"] is True
        assert availability["python"] is True
        assert "numba" in availability

    def test_auto_resolution_prefers_numba_when_probed(self, registry_state):
        breg._PROBES["numba"] = lambda: True
        assert backends.resolve_backend_name("auto") == "numba"
        breg._PROBES["numba"] = lambda: False
        assert backends.resolve_backend_name("auto") == "numpy"

    def test_env_drives_resolution(self, registry_state, monkeypatch):
        monkeypatch.setenv(breg.BACKEND_ENV, "python")
        assert backends.resolve_backend_name() == "python"
        backend = backends.set_backend(None)
        assert backend.name == "python"

    def test_set_backend_unknown_name_raises(self, registry_state):
        with pytest.raises(ValueError, match="unknown backend"):
            backends.set_backend("not-a-backend")

    def test_env_unknown_name_falls_back_once(self, registry_state, monkeypatch):
        monkeypatch.setenv(breg.BACKEND_ENV, "definitely-not-a-backend")
        before = _counter("backend.fallbacks")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            backend = backends.set_backend(None)
        assert backend.name == "numpy"
        assert _counter("backend.fallbacks") == before + 1
        # One-time warning: a second resolution is silent but still counted.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            backend = backends.set_backend(None)
        assert backend.name == "numpy"

    def test_unavailable_backend_falls_back(self, registry_state):
        """A factory failing mid-selection degrades to numpy with a warning."""

        def exploding_factory():
            raise BackendUnavailable("import failed mid-selection")

        breg._FACTORIES["numba"] = exploding_factory
        breg._PROBES["numba"] = lambda: True
        breg._INSTANCES.pop("numba", None)
        before = _counter("backend.fallbacks")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            backend = backends.set_backend("numba")
        assert backend.name == "numpy"
        assert backend.is_reference
        assert _counter("backend.fallbacks") == before + 1

    def test_numba_backend_reports_unavailable_without_numba(self):
        if backends.numba_importable():
            pytest.skip("numba is installed; unavailability path not reachable")
        with pytest.raises(BackendUnavailable, match="numba"):
            NumbaBackend()

    def test_instances_are_cached(self, registry_state):
        first = backends.set_backend("python")
        second = backends.set_backend("python")
        assert first is second

    def test_use_backend_restores_previous(self, registry_state):
        outer = backends.set_backend("numpy")
        with backends.use_backend("python") as inner:
            assert inner.name == "python"
            assert backends.get_backend() is inner
        assert backends.get_backend() is outer


class TestWarmup:
    def test_warmup_records_gauge_and_counter(self, registry_state):
        backends.set_backend("numpy")
        before = _counter("backend.warmups")
        seconds = backends.warmup()
        assert seconds >= 0.0
        snapshot = metrics_snapshot()
        assert snapshot.counters["backend.warmups"] == before + 1
        assert snapshot.gauges["backend.jit_compile_seconds"] == pytest.approx(
            seconds
        )

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_warmup_is_idempotent(self, registry_state, name):
        backends.set_backend(name)
        first = backends.warmup()
        second = backends.warmup()
        assert first >= 0.0 and second >= 0.0


def _pair():
    return KernelBackend(), NumpyBackend()


def _adversarial_vectors(rng, n, kind):
    if kind == "uniform":
        v = rng.random(n)
    elif kind == "tiny":
        v = rng.random(n) * 10.0 ** float(rng.integers(-12, 0))
    elif kind == "near_saturation":
        v = 1.0 - rng.random(n) * 1e-6
    else:  # "zeros" mixed in
        v = np.where(rng.random(n) < 0.3, 0.0, rng.random(n))
    return v


class TestPrimitiveIdentity:
    """python-kernel vs numpy-reference, primitive by primitive."""

    def test_dot_and_subtract(self):
        py, ref = _pair()
        rng = np.random.default_rng(0)
        for n in (1, 2, 7, 256, 1023):
            a = rng.integers(0, 1000, n).astype(np.float64)
            b = rng.integers(0, 1000, n).astype(np.float64)
            assert py.dot(a, b) == ref.dot(a, b)
            out_a = np.empty(n)
            out_b = np.empty(n)
            py.subtract(a, b, out_a)
            ref.subtract(a, b, out_b)
            assert np.array_equal(out_a, out_b)

    @pytest.mark.parametrize(
        "seed, kind",
        list(enumerate(["uniform", "tiny", "near_saturation", "zeros"])),
    )
    def test_dm_collision_log1p_elementwise(self, seed, kind):
        py, ref = _pair()
        rng = np.random.default_rng(seed)
        for trial in range(25):
            n = int(rng.integers(1, 500))
            v_a = _adversarial_vectors(rng, n, kind)
            v_b = np.ones(n)
            out_py = np.empty(n)
            out_ref = np.empty(n)
            sat_py = py.dm_collision_log1p(v_a, v_b, -1.0, out_py)
            sat_ref = ref.dm_collision_log1p(v_a, v_b, -1.0, out_ref)
            assert sat_py == sat_ref
            if not sat_py:
                # Bit-for-bit, including negative zeros.
                assert out_py.tobytes() == out_ref.tobytes()

    def test_dm_collision_log1p_saturates(self):
        py, ref = _pair()
        v = np.array([0.5, 1.0, 0.25])
        ones = np.ones(3)
        out = np.empty(3)
        assert py.dm_collision_log1p(v, ones, -1.0, out) is True
        assert ref.dm_collision_log1p(v, ones, -1.0, out) is True

    def test_dm_log1p_matches_math_log1p_closely(self):
        """The shared formulation stays within ~1 ulp of libm."""
        import math

        py, _ = _pair()
        rng = np.random.default_rng(3)
        x = -rng.random(2000) * 0.999
        out = np.empty(2000)
        assert not py.dm_collision_log1p(-x, np.ones(2000), -1.0, out)
        for xi, got in zip(x, out):
            expected = math.log1p(xi)
            assert got == pytest.approx(expected, rel=1e-14, abs=1e-300)

    def test_tree_sum_identity_and_order(self):
        py, ref = _pair()
        rng = np.random.default_rng(1)
        for n in (0, 1, 2, 3, 5, 8, 17, 100, 999):
            values = rng.standard_normal(n)
            a = py.tree_sum(values.copy())
            b = ref.tree_sum(values.copy())
            assert a == b

    def test_prob_round_given_same_draws(self):
        py, ref = _pair()
        rng = np.random.default_rng(2)
        for maximum in (-1, 0, 3, 10**9):
            n = 400
            values = rng.random(n) * 20.0 - 1.0  # includes negatives
            draws = rng.random(n)
            out_py = np.empty(n, dtype=np.int64)
            out_ref = np.empty(n, dtype=np.int64)
            py.prob_round_into(values, draws, maximum, out_py)
            ref.prob_round_into(values, draws, maximum, out_ref)
            assert np.array_equal(out_py, out_ref)

    def test_scale_round_given_same_draws(self):
        py, ref = _pair()
        rng = np.random.default_rng(4)
        n = 300
        histogram = rng.integers(0, 10**6, n)
        draws = rng.random(n)
        for factor in (0.0, 1e-9, 0.5, 1.0, 3.75):
            out_py = np.empty(n, dtype=np.int64)
            out_ref = np.empty(n, dtype=np.int64)
            py.scale_round_into(histogram, factor, draws, 10**5, out_py)
            ref.scale_round_into(histogram, factor, draws, 10**5, out_ref)
            assert np.array_equal(out_py, out_ref)

    def test_reconcile_bulk(self):
        py, ref = _pair()
        rng = np.random.default_rng(5)
        for trial in range(30):
            n = int(rng.integers(1, 200))
            base = rng.integers(0, 50, n)
            total = int(base.sum())
            for remaining in {0, 1, total // 2, max(total - 1, 0)}:
                t_py = base.copy()
                t_ref = base.copy()
                r_py = py.reconcile_bulk(t_py, remaining)
                r_ref = ref.reconcile_bulk(t_ref, remaining)
                assert r_py == r_ref
                assert np.array_equal(t_py, t_ref)
                # Bulk phase removes exactly remaining - leftover units.
                assert int(base.sum() - t_py.sum()) == remaining - r_py

    def test_popcounts(self):
        py, ref = _pair()
        rng = np.random.default_rng(6)
        for shape in ((0, 3), (1, 1), (5, 4), (64, 16)):
            bits = rng.integers(0, 256, shape).astype(np.uint8)
            assert py.popcount_sum(bits) == ref.popcount_sum(bits)
            assert py.or_popcount(bits) == ref.or_popcount(bits)

    def test_bitset_block_or(self):
        py, ref = _pair()
        rng = np.random.default_rng(7)
        block = rng.random((6, 40)) < 0.2
        b_bits = rng.integers(0, 256, (40, 5)).astype(np.uint8)
        out_py = np.zeros((10, 5), dtype=np.uint8)
        out_ref = np.zeros((10, 5), dtype=np.uint8)
        py.bitset_block_or(block, b_bits, out_py, 2)
        ref.bitset_block_or(block, b_bits, out_ref, 2)
        assert np.array_equal(out_py, out_ref)


class TestDriverIdentity:
    """End-to-end equality through the estimation drivers."""

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_density_map_estimate_matches_reference(self, registry_state, name):
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = int(rng.integers(1, 800))
            v_a = rng.integers(0, 50, n).astype(np.float64)
            v_b = rng.integers(0, 50, n).astype(np.float64)
            cells = float(rng.integers(1, 10**6))
            with backends.use_backend("numpy"):
                expected = density_map_vector_estimate(v_a, v_b, cells)
            with backends.use_backend(name):
                got = density_map_vector_estimate(v_a, v_b, cells)
            assert got == expected

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_propagate_product_bytes_match(self, registry_state, name):
        h_a = MNCSketch.from_matrix(random_sparse(60, 45, 0.1, seed=1))
        h_b = MNCSketch.from_matrix(random_sparse(45, 50, 0.2, seed=2))
        with backends.use_backend("numpy"):
            ref_sketch = propagate_product(h_a, h_b, rng=123)
        with backends.use_backend(name):
            got_sketch = propagate_product(h_a, h_b, rng=123)
        ref_arrays = sketch_to_arrays(ref_sketch)
        got_arrays = sketch_to_arrays(got_sketch)
        assert set(ref_arrays) == set(got_arrays)
        for key in ref_arrays:
            assert ref_arrays[key].tobytes() == got_arrays[key].tobytes()

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_probabilistic_round_matches_and_preserves_stream(
        self, registry_state, name
    ):
        values = np.random.default_rng(8).random(500) * 7.0
        with backends.use_backend("numpy"):
            expected = probabilistic_round(values, rng=42, maximum=5)
        with backends.use_backend(name):
            got = probabilistic_round(values, rng=42, maximum=5)
        assert np.array_equal(expected, got)
        # The driver draws exactly one uniform per entry, under every
        # backend: the generator state afterwards equals a fresh
        # generator's state after consuming len(values) uniforms.
        generator = np.random.default_rng(42)
        with backends.use_backend(name):
            probabilistic_round(values, rng=generator, maximum=5)
        reference = np.random.default_rng(42)
        reference.random(values.size)
        assert generator.random() == reference.random()

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_scale_histogram_matches(self, registry_state, name):
        histogram = np.random.default_rng(9).integers(0, 40, 120)
        with backends.use_backend("numpy"):
            expected = scale_histogram(histogram, 321.5, maximum=30, rng=7)
        with backends.use_backend(name):
            got = scale_histogram(histogram, 321.5, maximum=30, rng=7)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_bitset_estimator_matches(self, registry_state, name):
        a = random_sparse(70, 30, 0.15, seed=3)
        b = random_sparse(30, 40, 0.25, seed=4)
        estimator = BitsetEstimator()
        with backends.use_backend("numpy"):
            syn_ref = estimator._propagate_matmul(pack_matrix(a), pack_matrix(b))
        with backends.use_backend(name):
            syn_got = estimator._propagate_matmul(pack_matrix(a), pack_matrix(b))
        assert syn_ref.nnz_estimate == syn_got.nnz_estimate
        assert syn_ref.bits.tobytes() == syn_got.bits.tobytes()


class TestScratchSemantics:
    """Scratch reuse across backend calls must never corrupt results."""

    @pytest.mark.parametrize("name", _kernel_backend_names() + ["numpy"])
    def test_round_results_survive_scratch_reuse(self, registry_state, name):
        with backends.use_backend(name):
            values_one = np.full(300, 2.5)
            values_two = np.full(300, 7.25)
            first = probabilistic_round(values_one, rng=0)
            first_copy = first.copy()
            second = probabilistic_round(values_two, rng=1)
            # The first result is freshly allocated — reusing the draw
            # scratch for the second call must not alias or clobber it.
            assert np.array_equal(first, first_copy)
            assert not np.shares_memory(first, second)
            assert set(np.unique(first)) <= {2, 3}
            assert set(np.unique(second)) <= {7, 8}

    def test_numpy_log1p_scratch_does_not_alias_driver_out(self, registry_state):
        backend = NumpyBackend()
        rng = np.random.default_rng(10)
        # Grow then shrink: the internal scratch is larger than the
        # second request, which exercises the sliced-view path.
        for n in (900, 40):
            v = rng.random(n)
            out = np.empty(n)
            assert not backend.dm_collision_log1p(v, np.ones(n), -1.0, out)
            check = np.empty(n)
            assert not KernelBackend().dm_collision_log1p(
                v, np.ones(n), -1.0, check
            )
            assert out.tobytes() == check.tobytes()

    @pytest.mark.parametrize("name", _kernel_backend_names())
    def test_interleaved_sizes_stay_identical(self, registry_state, name):
        rng = np.random.default_rng(12)
        sizes = [513, 7, 1024, 64, 1]
        for n in sizes:
            v_a = rng.integers(0, 30, n).astype(np.float64)
            v_b = rng.integers(0, 30, n).astype(np.float64)
            with backends.use_backend("numpy"):
                expected = density_map_vector_estimate(v_a, v_b, 1e5)
            with backends.use_backend(name):
                got = density_map_vector_estimate(v_a, v_b, 1e5)
            assert got == expected


class TestCliBackendFlag:
    def test_estimators_reports_backend(self, registry_state, capsys, monkeypatch):
        from repro.cli import main

        assert main(["estimators", "--backend", "python"]) == 0
        out = capsys.readouterr().out
        assert "kernel backend: python" in out
        # The flag exports the selection for worker processes.
        import os

        assert os.environ[breg.BACKEND_ENV] == "python"

    def test_info_reports_backend(self, registry_state, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        assert "backend:" in capsys.readouterr().out
