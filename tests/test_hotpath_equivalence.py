"""Trusted-tier vs validated-tier equivalence (docs/PERFORMANCE.md).

The hot-path overhaul introduced a trusted construction tier
(:meth:`MNCSketch.trusted`), lazy summary statistics, and scratch-buffer
kernels. None of that may change a single bit of any estimate: this module
proves it by running the ``repro.verify`` generator zoo through both tiers
(:func:`~repro.core.hotpath.validated_scope` re-routes every trusted
construction through the fully validating constructor) and comparing
results exactly — estimates, serialized bytes, and summary statistics.
"""

import numpy as np
import pytest

from repro.core.hotpath import HOTPATH, validated_scope, validation_forced
from repro.core.serialize import sketch_to_arrays
from repro.core.sketch import MNCSketch, _cached_zeros
from repro.estimators.mnc import MNCEstimator
from repro.ir.estimate import estimate_root_nnz
from repro.matrix.random import random_sparse
from repro.verify.generators import all_generators, generate_case

CASES_PER_GENERATOR = 6
SEED = 20260806


def _zoo_cases():
    for generator in all_generators():
        for index in range(CASES_PER_GENERATOR):
            yield generate_case(generator, SEED, index)


def _case_ids():
    return [
        f"{g}-{i}"
        for g in all_generators()
        for i in range(CASES_PER_GENERATOR)
    ]


class TestEstimateEquivalence:
    @pytest.mark.parametrize("case", list(_zoo_cases()), ids=_case_ids())
    def test_trusted_matches_validated_bitwise(self, case):
        """Same case, same seeds: both tiers give the identical float."""
        trusted = estimate_root_nnz(case.root, MNCEstimator(seed=SEED))
        with validated_scope():
            validated = estimate_root_nnz(case.root, MNCEstimator(seed=SEED))
        assert trusted == validated  # exact, not approx

    def test_validated_scope_is_scoped_and_reentrant(self):
        assert not validation_forced()
        with validated_scope():
            assert validation_forced()
            with validated_scope():
                assert validation_forced()
            assert validation_forced()
        assert not validation_forced()


class TestSketchEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_serialized_bytes_identical(self, seed):
        """Trusted construction serializes byte-for-byte like validated."""
        matrix = random_sparse(40, 32, 0.15, seed=seed)
        built = MNCSketch.from_matrix(matrix)
        trusted = MNCSketch.trusted(
            shape=built.shape, hr=built.hr, hc=built.hc,
            her=built.her, hec=built.hec,
            fully_diagonal=built.fully_diagonal, exact=built.exact,
        )
        validated = MNCSketch(
            shape=built.shape, hr=built.hr, hc=built.hc,
            her=built.her, hec=built.hec,
            fully_diagonal=built.fully_diagonal, exact=built.exact,
        )
        a = sketch_to_arrays(trusted)
        b = sketch_to_arrays(validated)
        assert a.keys() == b.keys()
        for key in a:
            assert a[key].tobytes() == b[key].tobytes(), key
            assert a[key].dtype == b[key].dtype, key

    @pytest.mark.parametrize("seed", range(8))
    def test_lazy_summaries_equal_eager(self, seed):
        """Every lazily cached statistic equals its from-scratch value."""
        matrix = random_sparse(37, 29, 0.2, seed=seed)
        sketch = MNCSketch.from_matrix(matrix)
        m, n = sketch.shape
        hr, hc = sketch.hr, sketch.hc
        assert sketch.max_hr == (int(hr.max()) if hr.size else 0)
        assert sketch.max_hc == (int(hc.max()) if hc.size else 0)
        assert sketch.nnz_rows == int(np.count_nonzero(hr))
        assert sketch.nnz_cols == int(np.count_nonzero(hc))
        assert sketch.rows_half_full == int(np.count_nonzero(hr > n / 2))
        assert sketch.cols_half_full == int(np.count_nonzero(hc > m / 2))
        assert sketch.rows_single == int(np.count_nonzero(hr == 1))
        assert sketch.cols_single == int(np.count_nonzero(hc == 1))
        assert sketch.total_nnz == int(hr.sum())
        assert sketch.row_stats == (
            sketch.max_hr, sketch.nnz_rows,
            sketch.rows_half_full, sketch.rows_single,
        )
        assert sketch.col_stats == (
            sketch.max_hc, sketch.nnz_cols,
            sketch.cols_half_full, sketch.cols_single,
        )

    def test_float64_mirrors_match_and_are_readonly(self):
        sketch = MNCSketch.from_matrix(random_sparse(30, 30, 0.1, seed=3))
        np.testing.assert_array_equal(sketch.hr_f64, sketch.hr.astype(np.float64))
        np.testing.assert_array_equal(sketch.hc_f64, sketch.hc.astype(np.float64))
        assert not sketch.hr_f64.flags.writeable
        assert not sketch.hc_f64.flags.writeable
        assert sketch.hr_f64 is sketch.hr_f64  # cached, not rebuilt

    def test_zero_vectors_cached_and_readonly(self):
        a = _cached_zeros(17)
        b = _cached_zeros(17)
        assert a is b
        assert not a.flags.writeable
        assert (a == 0).all() and a.dtype == np.int64
        f = _cached_zeros(17, np.float64)
        assert f.dtype == np.float64 and f is not a

    def test_pickle_drops_caches(self):
        import pickle

        sketch = MNCSketch.from_matrix(random_sparse(25, 25, 0.2, seed=5))
        sketch.total_nnz, sketch.row_stats, sketch.hr_f64  # warm caches
        clone = pickle.loads(pickle.dumps(sketch))
        assert "_hr_f64" not in clone.__dict__
        assert "_row_bundle" not in clone.__dict__
        np.testing.assert_array_equal(clone.hr, sketch.hr)
        assert clone.total_nnz == sketch.total_nnz


class TestHotpathCounters:
    def test_trusted_and_validated_constructions_counted(self):
        HOTPATH.reset()
        sketch = MNCSketch.from_matrix(random_sparse(20, 20, 0.2, seed=1))
        assert HOTPATH.validated_constructions >= 1
        before = HOTPATH.trusted_constructions
        MNCSketch.trusted(
            shape=sketch.shape, hr=sketch.hr, hc=sketch.hc,
            her=sketch.her, hec=sketch.hec,
            fully_diagonal=sketch.fully_diagonal, exact=sketch.exact,
        )
        assert HOTPATH.trusted_constructions == before + 1

    def test_trusted_validates_inside_scope(self):
        HOTPATH.reset()
        sketch = MNCSketch.from_matrix(random_sparse(20, 20, 0.2, seed=1))
        validated_before = HOTPATH.validated_constructions
        trusted_before = HOTPATH.trusted_constructions
        with validated_scope():
            MNCSketch.trusted(
                shape=sketch.shape, hr=sketch.hr, hc=sketch.hc,
                her=sketch.her, hec=sketch.hec,
                fully_diagonal=sketch.fully_diagonal, exact=sketch.exact,
            )
        assert HOTPATH.validated_constructions == validated_before + 1
        assert HOTPATH.trusted_constructions == trusted_before

    def test_trusted_inside_scope_rejects_bad_sketch(self):
        """validated_scope restores the invariant checks the fast tier skips."""
        from repro.errors import SketchError

        hr = np.array([2, 1], dtype=np.int64)
        hc = np.array([1, 1], dtype=np.int64)  # sum(hr)=3 != sum(hc)=2
        MNCSketch.trusted(
            shape=(2, 2), hr=hr, hc=hc, her=None, hec=None,
            fully_diagonal=False, exact=False,
        )  # fast tier: no check, caller's responsibility
        with validated_scope():
            with pytest.raises(SketchError):
                MNCSketch.trusted(
                    shape=(2, 2), hr=hr, hc=hc, her=None, hec=None,
                    fully_diagonal=False, exact=False,
                )


class TestKernelFixes:
    """Regression tests for the satellite kernel fixes of the overhaul."""

    @pytest.mark.parametrize("fill", [0.5, 0.9, 0.99, 1.0])
    def test_capped_multinomial_near_dense(self, fill):
        """Bulk redistribution: exact total, cap respected, even when the
        requested total nearly saturates ``bins * cap``."""
        from repro.core.sketch import _capped_multinomial

        bins, cap = 500, 40
        total = int(bins * cap * fill)
        counts = _capped_multinomial(total, bins, cap, np.random.default_rng(0))
        assert int(counts.sum()) == total
        assert int(counts.max()) <= cap
        assert int(counts.min()) >= 0
        assert counts.dtype == np.int64

    def test_capped_multinomial_single_bin(self):
        from repro.core.sketch import _capped_multinomial

        counts = _capped_multinomial(7, 1, 10, np.random.default_rng(0))
        assert counts.tolist() == [7]

    @pytest.mark.parametrize("seed", range(5))
    def test_bitset_col_sums_popcount_exact(self, seed):
        """The popcount-of-OR column count matches the materialized truth."""
        from repro.estimators.bitset import BitsetEstimator, pack_matrix
        from repro.matrix.conversion import as_csr

        matrix = random_sparse(33, 41, 0.12, seed=seed)
        synopsis = pack_matrix(matrix)
        estimator = BitsetEstimator()
        expected = float(np.count_nonzero(
            np.asarray((as_csr(matrix) != 0).sum(axis=0)).ravel()
        ))
        assert estimator._estimate_col_sums(synopsis) == expected

    def test_bitset_col_sums_ignores_padding_bits(self):
        """Column counts must not count the padding bits past column n."""
        from repro.estimators.bitset import BitsetEstimator, pack_matrix

        dense = np.ones((4, 13))  # 13 columns: 3 padding bits in last byte
        synopsis = pack_matrix(dense)
        assert BitsetEstimator()._estimate_col_sums(synopsis) == 13.0


def _backend_names():
    """Kernel backends to hold against the numpy reference.

    The plain-Python debug backend always participates (it runs the exact
    numba kernel definitions under the interpreter); the compiled numba
    backend joins automatically when numba is installed, which is how the
    CI ``backends`` job gets its compiled-leg coverage.
    """
    from repro import backends

    names = ["python"]
    if backends.numba_importable():
        names.append("numba")
    return names


class TestBackendEquivalence:
    """numpy reference vs kernel backends: byte-identical, per contract.

    Same zoo, same seeds as the tier equivalence tests above — every
    estimate and every propagated sketch must agree bit-for-bit across
    backends (docs/PERFORMANCE.md "Backends").
    """

    @pytest.mark.parametrize("backend_name", _backend_names())
    @pytest.mark.parametrize("case", list(_zoo_cases()), ids=_case_ids())
    def test_zoo_estimates_bitwise_equal(self, backend_name, case):
        from repro import backends

        with backends.use_backend("numpy"):
            reference = estimate_root_nnz(case.root, MNCEstimator(seed=SEED))
        with backends.use_backend(backend_name):
            kernel = estimate_root_nnz(case.root, MNCEstimator(seed=SEED))
        assert reference == kernel  # exact, not approx

    @pytest.mark.parametrize("backend_name", _backend_names())
    @pytest.mark.parametrize("seed", range(4))
    def test_propagated_sketch_bytes_equal(self, backend_name, seed):
        from repro import backends
        from repro.core.propagate import propagate_product

        h_a = MNCSketch.from_matrix(random_sparse(48, 36, 0.12, seed=seed))
        h_b = MNCSketch.from_matrix(random_sparse(36, 44, 0.18, seed=seed + 100))
        with backends.use_backend("numpy"):
            reference = propagate_product(h_a, h_b, rng=seed)
        with backends.use_backend(backend_name):
            kernel = propagate_product(h_a, h_b, rng=seed)
        a = sketch_to_arrays(reference)
        b = sketch_to_arrays(kernel)
        assert a.keys() == b.keys()
        for key in a:
            assert a[key].tobytes() == b[key].tobytes(), key

    @pytest.mark.parametrize("backend_name", _backend_names())
    def test_chain_dp_workers_and_backends_agree(self, backend_name):
        """Chain DP: same plan and cost at workers=1 and workers=4, under
        the numpy reference and every kernel backend."""
        from repro import backends
        from repro.optimizer import optimize_chain_sparse, plan_to_string

        rng = np.random.default_rng(17)
        dims = [30, 20, 25, 15, 35, 10]
        sketches = [
            MNCSketch.synthetic(m, n, 0.15, rng)
            for m, n in zip(dims, dims[1:])
        ]
        outcomes = {}
        for name in ("numpy", backend_name):
            for workers in (1, 4):
                with backends.use_backend(name):
                    solution = optimize_chain_sparse(
                        sketches, rng=np.random.default_rng(3), workers=workers
                    )
                outcomes[(name, workers)] = (
                    plan_to_string(solution.plan), solution.cost
                )
        # Serial and parallel consume the rng differently (documented), so
        # compare across backends within each worker count.
        assert outcomes[("numpy", 1)] == outcomes[(backend_name, 1)]
        assert outcomes[("numpy", 4)] == outcomes[(backend_name, 4)]
