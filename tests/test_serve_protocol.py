"""Tests for the serving wire format (repro.serve.protocol)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ProtocolError
from repro.ir.nodes import leaf
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.serve.protocol import (
    canonical_expr_key,
    decode_estimate_request,
    decode_expr,
    decode_matrix,
    decode_register_request,
    decode_update_request,
    encode_chain_solution,
    encode_estimate_result,
    encode_matrix,
)


class TestMatrixCodec:
    def test_coo_round_trip(self):
        matrix = random_sparse(20, 15, 0.2, seed=3)
        wire = encode_matrix(matrix)
        decoded = decode_matrix(wire)
        assert decoded.shape == (20, 15)
        np.testing.assert_array_equal(
            (decoded.toarray() != 0), (matrix.toarray() != 0)
        )

    def test_dense_payload(self):
        decoded = decode_matrix({"dense": [[1.0, 0.0], [0.0, 2.0]]})
        assert decoded.shape == (2, 2)
        assert decoded.nnz == 2

    def test_values_are_structural(self):
        wire = {"shape": [2, 2], "rows": [0, 1], "cols": [1, 0]}
        decoded = decode_matrix(wire)
        np.testing.assert_array_equal(decoded.data, [1.0, 1.0])

    def test_duplicate_coordinates_collapse(self):
        wire = {"shape": [2, 2], "rows": [0, 0], "cols": [1, 1]}
        decoded = decode_matrix(wire)
        assert decoded.nnz == 1
        assert decoded.toarray()[0, 1] == 1.0

    def test_empty_matrix(self):
        decoded = decode_matrix({"shape": [3, 4], "rows": [], "cols": []})
        assert decoded.shape == (3, 4)
        assert decoded.nnz == 0

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"shape": [2], "rows": [], "cols": []},
            {"shape": [2, 2], "rows": [0]},
            {"shape": [2, 2], "rows": [0], "cols": [0, 1]},
            {"shape": [2, 2], "rows": [2], "cols": [0]},
            {"shape": [2, 2], "rows": [0], "cols": [5]},
            {"shape": [-1, 2], "rows": [], "cols": []},
            {"shape": ["a", 2], "rows": [], "cols": []},
            {"dense": "nope"},
            {"dense": [1, 2, 3]},
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ProtocolError):
            decode_matrix(payload)


class TestExprCodec:
    def _resolver(self):
        leaves = {
            "X": leaf(random_sparse(10, 8, 0.3, seed=1), name="X"),
            "W": leaf(random_sparse(8, 6, 0.3, seed=2), name="W"),
        }

        def resolve(name):
            try:
                return leaves[name]
            except KeyError:
                raise ProtocolError(f"unknown {name!r}") from None

        return resolve, leaves

    def test_ref_resolves_to_cached_leaf(self):
        resolve, leaves = self._resolver()
        assert decode_expr({"ref": "X"}, resolve) is leaves["X"]

    def test_nested_tree(self):
        resolve, _ = self._resolver()
        expr = decode_expr(
            {
                "op": "matmul",
                "inputs": [
                    {"ref": "X"},
                    {"op": "transpose", "inputs": [{"op": "transpose", "inputs": [{"ref": "W"}]}]},
                ],
            },
            resolve,
        )
        assert expr.op is Op.MATMUL
        assert expr.shape == (10, 6)

    def test_reshape_params(self):
        resolve, _ = self._resolver()
        expr = decode_expr(
            {"op": "reshape", "inputs": [{"ref": "X"}], "params": {"rows": 8, "cols": 10}},
            resolve,
        )
        assert expr.shape == (8, 10)

    def test_inline_matrix_leaf(self):
        resolve, _ = self._resolver()
        expr = decode_expr(
            {"matrix": {"shape": [2, 2], "rows": [0], "cols": [0]}}, resolve
        )
        assert expr.op is Op.LEAF
        assert expr.shape == (2, 2)

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"op": "nope", "inputs": []}, "unknown operation"),
            ({"op": "leaf", "inputs": []}, "ref"),
            ({"op": "matmul", "inputs": [{"ref": "X"}]}, "expects 2 inputs"),
            ({"op": "matmul", "inputs": [{"ref": "W"}, {"ref": "X"}]}, "invalid expression"),
            ({"op": "reshape", "inputs": [{"ref": "X"}], "params": {}}, "reshape needs"),
            ({"ref": 7}, "ref must be a string"),
            ({}, "needs 'ref'"),
            ({"ref": "missing"}, "unknown"),
        ],
    )
    def test_malformed_exprs_raise(self, payload, match):
        resolve, _ = self._resolver()
        with pytest.raises(ProtocolError, match=match):
            decode_expr(payload, resolve)

    def test_canonical_key_order_insensitive(self):
        a = {"op": "matmul", "inputs": [{"ref": "X"}, {"ref": "W"}]}
        b = {"inputs": [{"ref": "X"}, {"ref": "W"}], "op": "matmul"}
        assert canonical_expr_key(a) == canonical_expr_key(b)
        c = {"op": "matmul", "inputs": [{"ref": "W"}, {"ref": "X"}]}
        assert canonical_expr_key(a) != canonical_expr_key(c)


class TestResultCodec:
    def test_estimate_result_is_json_safe(self):
        import json

        payload = encode_estimate_result(
            {
                "nnz": np.float64(12.5),
                "sparsity": np.float64(0.1),
                "fingerprint": "abc",
                "cached": np.bool_(True),
                "seconds": 0.01,
            }
        )
        json.dumps(payload)
        assert payload["nnz"] == 12.5 and payload["cached"] is True

    def test_chain_solution_plan_nests(self):
        from repro.optimizer.mmchain import ChainSolution

        encoded = encode_chain_solution(
            ChainSolution(plan=((0, 1), 2), cost=np.float64(42.0))
        )
        assert encoded == {"plan": [[0, 1], 2], "cost": 42.0}


class TestRequestCodec:
    def test_single(self):
        decoded = decode_estimate_request({"expr": {"ref": "X"}})
        assert decoded["kind"] == "estimate"
        assert decoded["include_intermediates"] is False

    def test_batch(self):
        decoded = decode_estimate_request({"exprs": [{"ref": "X"}], "workers": 2})
        assert decoded["kind"] == "estimate_many" and decoded["workers"] == 2

    def test_chain(self):
        decoded = decode_estimate_request({"chain": ["A", "B"], "seed": 5})
        assert decoded["kind"] == "optimize_chain" and decoded["seed"] == 5

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"expr": {"ref": "X"}, "exprs": []},
            {"exprs": []},
            {"chain": ["only-one"]},
            {"chain": ["A", 2]},
            {"expr": {"ref": "X"}, "workers": "many"},
            {"chain": ["A", "B"], "seed": "x"},
        ],
    )
    def test_malformed_requests_raise(self, payload):
        with pytest.raises(ProtocolError):
            decode_estimate_request(payload)

    def test_register_whole(self):
        decoded = decode_register_request({"name": "X", "matrix": {"dense": [[1]]}})
        assert decoded["name"] == "X" and "matrix" in decoded

    def test_register_shards_with_indices(self):
        decoded = decode_register_request(
            {
                "name": "X",
                "axis": 1,
                "shards": [
                    {"matrix": {"dense": [[1]]}, "index": 1},
                    {"matrix": {"dense": [[1]]}, "index": 0},
                ],
            }
        )
        assert decoded["axis"] == 1 and decoded["indices"] == [1, 0]

    @pytest.mark.parametrize(
        "payload",
        [
            {"matrix": {"dense": [[1]]}},
            {"name": "", "matrix": {"dense": [[1]]}},
            {"name": "X"},
            {"name": "X", "matrix": {}, "shards": []},
            {"name": "X", "shards": []},
            {"name": "X", "shards": [{"matrix": {}}], "axis": 3},
            {"name": "X", "shards": [{"matrix": {}, "index": 0}, {"matrix": {}}]},
        ],
    )
    def test_malformed_register_raises(self, payload):
        with pytest.raises(ProtocolError):
            decode_register_request(payload)


class TestUpdateRequestCodec:
    def test_single_delta_decodes(self):
        from repro.core.incremental import AppendRows, delta_to_payload

        delta = AppendRows([np.array([0, 2, 5])])
        decoded = decode_update_request({"delta": delta_to_payload(delta)})
        assert len(decoded) == 1
        assert isinstance(decoded[0], AppendRows)
        np.testing.assert_array_equal(decoded[0].patterns[0], [0, 2, 5])

    def test_delta_batch_preserves_order(self):
        from repro.core.incremental import (
            AppendRows,
            DeleteCols,
            delta_to_payload,
        )

        deltas = [AppendRows([np.array([1])]), DeleteCols([0, 3])]
        decoded = decode_update_request(
            {"deltas": [delta_to_payload(d) for d in deltas]}
        )
        assert [type(d) for d in decoded] == [AppendRows, DeleteCols]
        np.testing.assert_array_equal(decoded[1].positions, [0, 3])

    def test_block_round_trips_through_request(self):
        from repro.core.incremental import BlockUpdate, delta_to_payload

        block = BlockUpdate(2, 3, np.array([[1, 0], [0, 1]]))
        (decoded,) = decode_update_request(
            {"delta": delta_to_payload(block)}
        )
        assert (decoded.row_start, decoded.col_start) == (2, 3)
        np.testing.assert_array_equal(decoded.pattern, block.pattern)

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"delta": {"kind": "append_rows"}, "deltas": []},
            {"deltas": []},
            {"deltas": "nope"},
            {"delta": {"kind": "no_such_kind"}},
            {"delta": "not an object"},
            {"deltas": [{"kind": "delete_rows", "positions": "x"}]},
        ],
    )
    def test_malformed_update_raises(self, payload):
        with pytest.raises(ProtocolError):
            decode_update_request(payload)

    def test_malformed_delta_error_names_position(self):
        from repro.core.incremental import AppendRows, delta_to_payload

        good = delta_to_payload(AppendRows([np.array([1])]))
        with pytest.raises(ProtocolError, match="delta 1"):
            decode_update_request({"deltas": [good, {"kind": "bogus"}]})
