"""Tests for the random workload generator."""

import math

import numpy as np
import pytest

from repro.ir.interpreter import evaluate
from repro.opcodes import Op
from repro.sparsest.workload import (
    WorkloadConfig,
    WorkloadGenerator,
    workload_errors,
)


class TestGenerator:
    def test_expressions_are_valid(self):
        generator = WorkloadGenerator(seed=1)
        for expression in generator.batch(10):
            structure = evaluate(expression)  # raises on any inconsistency
            assert structure.shape == expression.shape

    def test_deterministic_given_seed(self):
        first = WorkloadGenerator(seed=7).expression()
        second = WorkloadGenerator(seed=7).expression()
        assert repr(first) == repr(second)
        assert evaluate(first).nnz == evaluate(second).nnz

    def test_different_seeds_differ(self):
        batch_a = WorkloadGenerator(seed=1).batch(5)
        batch_b = WorkloadGenerator(seed=2).batch(5)
        assert any(repr(x) != repr(y) for x, y in zip(batch_a, batch_b))

    def test_depth_bounded(self):
        config = WorkloadConfig(max_depth=2)
        generator = WorkloadGenerator(config, seed=3)
        for expression in generator.batch(20):
            depth = _depth(expression)
            # leaves sit at operation depth <= max_depth + 1
            assert depth <= config.max_depth + 1

    def test_leaf_kind_restriction(self):
        config = WorkloadConfig(leaf_kinds=("single_nnz",), max_depth=2)
        generator = WorkloadGenerator(config, seed=4)
        for expression in generator.batch(5):
            for node in expression.leaves():
                assert "single_nnz" in node.label

    def test_unknown_leaf_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(WorkloadConfig(leaf_kinds=("weird",)))

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(WorkloadConfig(max_depth=0))

    def test_op_mix_contains_variety(self):
        generator = WorkloadGenerator(WorkloadConfig(max_depth=5), seed=5)
        ops = set()
        for expression in generator.batch(30):
            for node in expression.postorder():
                ops.add(node.op)
        assert Op.MATMUL in ops
        assert Op.EWISE_ADD in ops or Op.EWISE_MULT in ops
        assert any(op.is_reorganization for op in ops)


class TestWorkloadErrors:
    def test_exact_oracle_always_one(self):
        generator = WorkloadGenerator(WorkloadConfig(max_depth=3), seed=6)
        expressions = generator.batch(5)
        errors = workload_errors(expressions, ["exact"])
        assert all(error == pytest.approx(1.0) for error in errors["exact"])

    def test_mnc_beats_meta_on_structured_workloads(self):
        config = WorkloadConfig(
            max_depth=3, leaf_kinds=("single_nnz", "power_law", "permutation")
        )
        generator = WorkloadGenerator(config, seed=7)
        expressions = generator.batch(12)
        errors = workload_errors(expressions, ["mnc", "meta_ac"])
        assert len(errors["mnc"]) == len(expressions)

        def geo_mean(values):
            finite = [v for v in values if math.isfinite(v)]
            return math.exp(sum(math.log(v) for v in finite) / len(finite))

        assert geo_mean(errors["mnc"]) <= geo_mean(errors["meta_ac"]) * 1.05

    def test_unsupported_estimators_skip_entries(self):
        config = WorkloadConfig(max_depth=3, ewise_weight=5.0)
        generator = WorkloadGenerator(config, seed=8)
        expressions = generator.batch(10)
        errors = workload_errors(expressions, ["layered_graph", "mnc"])
        assert len(errors["mnc"]) == len(expressions)
        assert len(errors["layered_graph"]) <= len(expressions)


def _depth(expression):
    depths = {}
    for node in expression.postorder():
        if not node.inputs:
            depths[id(node)] = 1
        else:
            depths[id(node)] = 1 + max(depths[id(c)] for c in node.inputs)
    return depths[id(expression)]
