"""Unit tests for the exact oracle estimator."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.estimators import ExactOracle
from repro.matrix import ops as mops
from repro.matrix.random import random_sparse
from repro.opcodes import Op


@pytest.fixture
def oracle():
    return ExactOracle()


class TestOracle:
    def test_every_op_matches_ground_truth(self, oracle):
        square = random_sparse(10, 10, 0.3, seed=1)
        vector = random_sparse(10, 1, 0.6, seed=2)
        s = oracle.build(square)
        v = oracle.build(vector)
        expectations = [
            (Op.MATMUL, [s, s], {}, mops.matmul(square, square).nnz),
            (Op.EWISE_ADD, [s, s], {}, square.nnz),
            (Op.EWISE_MULT, [s, s], {}, square.nnz),
            (Op.TRANSPOSE, [s], {}, square.nnz),
            (Op.RESHAPE, [s], {"rows": 5, "cols": 20}, square.nnz),
            (Op.DIAG_V2M, [v], {}, vector.nnz),
            (Op.DIAG_M2V, [s], {}, mops.diag_extract(square).nnz),
            (Op.RBIND, [s, s], {}, 2 * square.nnz),
            (Op.CBIND, [s, s], {}, 2 * square.nnz),
            (Op.NEQ_ZERO, [s], {}, square.nnz),
            (Op.EQ_ZERO, [s], {}, 100 - square.nnz),
        ]
        for op, operands, params, truth in expectations:
            assert oracle.estimate_nnz(op, operands, **params) == truth, op

    def test_propagation_materializes_structure(self, oracle):
        a = random_sparse(8, 6, 0.4, seed=3)
        b = random_sparse(6, 9, 0.4, seed=4)
        result = oracle.propagate(Op.MATMUL, [oracle.build(a), oracle.build(b)])
        assert_structure_equal(result.matrix, mops.matmul(a, b))

    def test_synopsis_size_is_materialized_size(self, oracle):
        synopsis = oracle.build(random_sparse(100, 100, 0.1, seed=5))
        assert synopsis.size_bytes() > 0

    def test_values_normalized_to_structure(self, oracle):
        synopsis = oracle.build(np.array([[5.0, -2.0], [0.0, 0.1]]))
        assert set(np.unique(synopsis.matrix.data)) == {1}
