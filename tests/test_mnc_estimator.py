"""Unit tests for the MNC estimator adapter (and MNC Basic)."""

import numpy as np
import pytest

from repro.estimators import MNCBasicEstimator, MNCEstimator
from repro.estimators.mnc import MNCSynopsis
from repro.matrix import ops as mops
from repro.matrix.random import (
    outer_product_pair,
    random_sparse,
    single_nnz_per_row,
)
from repro.opcodes import Op


@pytest.fixture
def mnc():
    return MNCEstimator(seed=1)


@pytest.fixture
def basic():
    return MNCBasicEstimator(seed=1)


class TestAdapters:
    def test_build_wraps_sketch(self, mnc):
        matrix = random_sparse(10, 12, 0.3, seed=2)
        synopsis = mnc.build(matrix)
        assert isinstance(synopsis, MNCSynopsis)
        assert synopsis.nnz_estimate == matrix.nnz
        assert synopsis.shape == (10, 12)

    def test_basic_has_no_extensions(self, basic):
        matrix = np.array([[1, 1], [1, 0]])
        synopsis = basic.build(matrix)
        assert not synopsis.sketch.has_extensions

    def test_size_bytes_delegates(self, mnc):
        synopsis = mnc.build(random_sparse(100, 50, 0.2, seed=3))
        assert synopsis.size_bytes() == synopsis.sketch.size_bytes()


class TestProductEstimates:
    def test_theorem31_exact(self, mnc):
        a = single_nnz_per_row(200, 40, seed=4)
        b = random_sparse(40, 60, 0.2, seed=5)
        estimate = mnc.estimate_nnz(Op.MATMUL, [mnc.build(a), mnc.build(b)])
        assert estimate == mops.matmul(a, b).nnz

    def test_full_beats_basic_on_inner_case(self, mnc, basic):
        row, column = outer_product_pair(64)
        truth = 1.0
        full = mnc.estimate_nnz(Op.MATMUL, [mnc.build(column.T), mnc.build(row.T)])
        basic_est = basic.estimate_nnz(
            Op.MATMUL, [basic.build(column.T), basic.build(row.T)]
        )
        assert abs(full - truth) <= abs(basic_est - truth)

    def test_propagation_returns_mnc_synopsis(self, mnc):
        a = random_sparse(30, 20, 0.2, seed=6)
        b = random_sparse(20, 25, 0.2, seed=7)
        result = mnc.propagate(Op.MATMUL, [mnc.build(a), mnc.build(b)])
        assert isinstance(result, MNCSynopsis)
        assert result.shape == (30, 25)


class TestAllOperations:
    """MNC must handle every IR operation (estimate + propagate)."""

    def test_full_op_coverage(self, mnc):
        square = random_sparse(12, 12, 0.3, seed=8)
        vector = random_sparse(12, 1, 0.6, seed=9)
        synopsis = mnc.build(square)
        vec_synopsis = mnc.build(vector)
        cases = [
            (Op.MATMUL, [synopsis, synopsis], {}),
            (Op.EWISE_ADD, [synopsis, synopsis], {}),
            (Op.EWISE_MULT, [synopsis, synopsis], {}),
            (Op.TRANSPOSE, [synopsis], {}),
            (Op.RESHAPE, [synopsis], {"rows": 6, "cols": 24}),
            (Op.DIAG_V2M, [vec_synopsis], {}),
            (Op.DIAG_M2V, [synopsis], {}),
            (Op.RBIND, [synopsis, synopsis], {}),
            (Op.CBIND, [synopsis, synopsis], {}),
            (Op.NEQ_ZERO, [synopsis], {}),
            (Op.EQ_ZERO, [synopsis], {}),
        ]
        for op, operands, params in cases:
            nnz = mnc.estimate_nnz(op, operands, **params)
            assert np.isfinite(nnz), f"estimate for {op} not finite"
            propagated = mnc.propagate(op, operands, **params)
            assert isinstance(propagated, MNCSynopsis), f"propagate {op}"

    def test_reorg_estimates_exact(self, mnc):
        matrix = random_sparse(15, 10, 0.3, seed=10)
        synopsis = mnc.build(matrix)
        assert mnc.estimate_nnz(Op.TRANSPOSE, [synopsis]) == matrix.nnz
        assert mnc.estimate_nnz(Op.NEQ_ZERO, [synopsis]) == matrix.nnz
        assert mnc.estimate_nnz(Op.EQ_ZERO, [synopsis]) == 150 - matrix.nnz
        assert (
            mnc.estimate_nnz(Op.RBIND, [synopsis, synopsis]) == 2 * matrix.nnz
        )

    def test_mask_pattern_exact(self, mnc):
        # Column-structured mask: the Eq 13 estimate is exact (B2.5).
        rng = np.random.default_rng(11)
        data = (rng.random((60, 30)) < 0.4).astype(float)
        mask = np.zeros((60, 30))
        mask[:, 10:20] = 1.0
        truth = mops.ewise_mult(mask, data).nnz
        estimate = mnc.estimate_nnz(
            Op.EWISE_MULT, [mnc.build(mask), mnc.build(data)]
        )
        assert estimate == pytest.approx(truth)


class TestDeterminism:
    def test_same_seed_same_propagation(self):
        a = random_sparse(50, 40, 0.1, seed=12)
        b = random_sparse(40, 45, 0.1, seed=13)
        results = []
        for _ in range(2):
            estimator = MNCEstimator(seed=99)
            synopsis = estimator.propagate(
                Op.MATMUL, [estimator.build(a), estimator.build(b)]
            )
            results.append(synopsis.sketch.hr.copy())
        np.testing.assert_array_equal(results[0], results[1])
