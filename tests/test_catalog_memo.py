"""Tests for the memoized estimation results table (repro.catalog.memo)."""

import collections
import threading
import time

import pytest

from repro.catalog.memo import EstimateMemo


class TestBasics:
    def test_get_put_round_trip(self):
        memo = EstimateMemo()
        memo.put("fp1", "MNC", "nnz", 123.0)
        assert memo.get("fp1", "MNC", "nnz") == 123.0
        assert len(memo) == 1

    def test_miss_returns_default(self):
        memo = EstimateMemo()
        assert memo.get("fp", "MNC", "nnz") is None
        assert memo.get("fp", "MNC", "nnz", default=-1.0) == -1.0

    def test_zero_is_a_valid_cached_value(self):
        memo = EstimateMemo()
        memo.put("fp", "MNC", "nnz", 0.0)
        assert memo.get("fp", "MNC", "nnz", default=-1.0) == 0.0

    def test_keys_are_triples(self):
        memo = EstimateMemo()
        memo.put("fp", "MNC", "nnz", 1.0)
        memo.put("fp", "MNC Basic", "nnz", 2.0)
        memo.put("fp", "MNC", "synopsis", "s")
        assert memo.get("fp", "MNC", "nnz") == 1.0
        assert memo.get("fp", "MNC Basic", "nnz") == 2.0
        assert memo.get("fp", "MNC", "synopsis") == "s"

    def test_memoize_computes_once(self):
        memo = EstimateMemo()
        calls = []

        def compute():
            calls.append(1)
            return 7.0

        assert memo.memoize("fp", "exact", "nnz", compute) == 7.0
        assert memo.memoize("fp", "exact", "nnz", compute) == 7.0
        assert len(calls) == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            EstimateMemo(max_entries=0)


class TestLruBound:
    def test_entry_bound_enforced(self):
        memo = EstimateMemo(max_entries=3)
        for index in range(5):
            memo.put(f"fp{index}", "MNC", "nnz", float(index))
        assert len(memo) == 3
        assert memo.get("fp0", "MNC", "nnz") is None
        assert memo.get("fp4", "MNC", "nnz") == 4.0

    def test_get_refreshes_recency(self):
        memo = EstimateMemo(max_entries=2)
        memo.put("a", "MNC", "nnz", 1.0)
        memo.put("b", "MNC", "nnz", 2.0)
        memo.get("a", "MNC", "nnz")
        memo.put("c", "MNC", "nnz", 3.0)  # evicts "b", not "a"
        assert memo.get("a", "MNC", "nnz") == 1.0
        assert memo.get("b", "MNC", "nnz") is None


class TestInvalidation:
    def _seeded(self):
        memo = EstimateMemo()
        memo.put("fp1", "MNC", "nnz", 1.0)
        memo.put("fp1", "DMap", "nnz", 2.0)
        memo.put("fp2", "MNC", "nnz", 3.0)
        return memo

    def test_invalidate_by_fingerprint(self):
        memo = self._seeded()
        assert memo.invalidate(fingerprint="fp1") == 2
        assert memo.get("fp1", "MNC", "nnz") is None
        assert memo.get("fp2", "MNC", "nnz") == 3.0

    def test_invalidate_by_estimator(self):
        memo = self._seeded()
        assert memo.invalidate(estimator="MNC") == 2
        assert memo.get("fp1", "DMap", "nnz") == 2.0

    def test_invalidate_by_both(self):
        memo = self._seeded()
        assert memo.invalidate(fingerprint="fp1", estimator="MNC") == 1
        assert memo.get("fp1", "DMap", "nnz") == 2.0
        assert memo.get("fp2", "MNC", "nnz") == 3.0

    def test_clear(self):
        memo = self._seeded()
        memo.clear()
        assert len(memo) == 0

    def test_stats(self):
        memo = self._seeded()
        memo.get("fp1", "MNC", "nnz")
        memo.get("nope", "MNC", "nnz")
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 3


class TestConcurrency:
    def test_parallel_memoize_no_lost_updates(self):
        memo = EstimateMemo()
        barrier = threading.Barrier(4)
        results = []

        def worker(worker_id):
            barrier.wait()
            for index in range(100):
                value = memo.memoize(
                    f"fp{index % 10}", "MNC", "nnz", lambda: float(index % 10)
                )
                results.append(value == float(index % 10))

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results) and len(results) == 400
        assert len(memo) == 10

    def test_memoize_single_writer_per_key(self):
        """Hammer one key from many threads: compute runs exactly once."""
        memo = EstimateMemo()
        barrier = threading.Barrier(8)
        computes = []
        values = []

        def compute():
            computes.append(1)
            time.sleep(0.02)  # widen the window so misses really overlap
            return 42.0

        def worker():
            barrier.wait()
            values.append(memo.memoize("hot", "MNC", "nnz", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(computes) == 1
        assert values == [42.0] * 8
        stats = memo.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 7
        assert stats["compute_waits"] == 7

    def test_memoize_many_keys_compute_once_each(self):
        """Threads race over a keyspace; every key computes exactly once."""
        memo = EstimateMemo()
        barrier = threading.Barrier(8)
        computed = collections.Counter()
        counter_lock = threading.Lock()

        def worker():
            barrier.wait()
            for index in range(200):
                key = f"fp{index % 16}"

                def compute(key=key):
                    with counter_lock:
                        computed[key] += 1
                    return key

                assert memo.memoize(key, "MNC", "nnz", compute) == key

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(computed) == {f"fp{i}" for i in range(16)}
        assert all(calls == 1 for calls in computed.values())

    def test_memoize_failed_compute_promotes_a_waiter(self):
        """A raising compute wakes waiters; one of them recomputes."""
        memo = EstimateMemo()
        barrier = threading.Barrier(2)
        attempts = []
        outcomes = []
        attempts_lock = threading.Lock()

        def compute():
            with attempts_lock:
                attempts.append(1)
                first = len(attempts) == 1
            time.sleep(0.02)
            if first:
                raise RuntimeError("transient failure")
            return 7.0

        def worker():
            barrier.wait()
            try:
                outcomes.append(memo.memoize("flaky", "MNC", "nnz", compute))
            except RuntimeError:
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one caller saw the failure; the survivor recomputed.
        assert sorted(outcomes, key=str) == [7.0, "raised"]
        assert memo.get("flaky", "MNC", "nnz") == 7.0

    def test_concurrent_put_and_memoize_lost_update_free(self):
        """Direct puts racing memoize never leave the memo torn or stale
        relative to both writers (one of the written values survives)."""
        memo = EstimateMemo()
        barrier = threading.Barrier(4)

        def putter():
            barrier.wait()
            for index in range(500):
                memo.put("contended", "MNC", "nnz", 1.0)

        def memoizer():
            barrier.wait()
            for index in range(500):
                value = memo.memoize("contended", "MNC", "nnz", lambda: 1.0)
                assert value == 1.0

        threads = [
            threading.Thread(target=putter),
            threading.Thread(target=putter),
            threading.Thread(target=memoizer),
            threading.Thread(target=memoizer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert memo.get("contended", "MNC", "nnz") == 1.0
