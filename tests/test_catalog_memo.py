"""Tests for the memoized estimation results table (repro.catalog.memo)."""

import collections
import threading
import time

import pytest

from repro.catalog.memo import EstimateMemo


class TestBasics:
    def test_get_put_round_trip(self):
        memo = EstimateMemo()
        memo.put("fp1", "MNC", "nnz", 123.0)
        assert memo.get("fp1", "MNC", "nnz") == 123.0
        assert len(memo) == 1

    def test_miss_returns_default(self):
        memo = EstimateMemo()
        assert memo.get("fp", "MNC", "nnz") is None
        assert memo.get("fp", "MNC", "nnz", default=-1.0) == -1.0

    def test_zero_is_a_valid_cached_value(self):
        memo = EstimateMemo()
        memo.put("fp", "MNC", "nnz", 0.0)
        assert memo.get("fp", "MNC", "nnz", default=-1.0) == 0.0

    def test_keys_are_triples(self):
        memo = EstimateMemo()
        memo.put("fp", "MNC", "nnz", 1.0)
        memo.put("fp", "MNC Basic", "nnz", 2.0)
        memo.put("fp", "MNC", "synopsis", "s")
        assert memo.get("fp", "MNC", "nnz") == 1.0
        assert memo.get("fp", "MNC Basic", "nnz") == 2.0
        assert memo.get("fp", "MNC", "synopsis") == "s"

    def test_memoize_computes_once(self):
        memo = EstimateMemo()
        calls = []

        def compute():
            calls.append(1)
            return 7.0

        assert memo.memoize("fp", "exact", "nnz", compute) == 7.0
        assert memo.memoize("fp", "exact", "nnz", compute) == 7.0
        assert len(calls) == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            EstimateMemo(max_entries=0)


class TestLruBound:
    def test_entry_bound_enforced(self):
        memo = EstimateMemo(max_entries=3)
        for index in range(5):
            memo.put(f"fp{index}", "MNC", "nnz", float(index))
        assert len(memo) == 3
        assert memo.get("fp0", "MNC", "nnz") is None
        assert memo.get("fp4", "MNC", "nnz") == 4.0

    def test_get_refreshes_recency(self):
        memo = EstimateMemo(max_entries=2)
        memo.put("a", "MNC", "nnz", 1.0)
        memo.put("b", "MNC", "nnz", 2.0)
        memo.get("a", "MNC", "nnz")
        memo.put("c", "MNC", "nnz", 3.0)  # evicts "b", not "a"
        assert memo.get("a", "MNC", "nnz") == 1.0
        assert memo.get("b", "MNC", "nnz") is None


class TestInvalidation:
    def _seeded(self):
        memo = EstimateMemo()
        memo.put("fp1", "MNC", "nnz", 1.0)
        memo.put("fp1", "DMap", "nnz", 2.0)
        memo.put("fp2", "MNC", "nnz", 3.0)
        return memo

    def test_invalidate_by_fingerprint(self):
        memo = self._seeded()
        assert memo.invalidate(fingerprint="fp1") == 2
        assert memo.get("fp1", "MNC", "nnz") is None
        assert memo.get("fp2", "MNC", "nnz") == 3.0

    def test_invalidate_by_estimator(self):
        memo = self._seeded()
        assert memo.invalidate(estimator="MNC") == 2
        assert memo.get("fp1", "DMap", "nnz") == 2.0

    def test_invalidate_by_both(self):
        memo = self._seeded()
        assert memo.invalidate(fingerprint="fp1", estimator="MNC") == 1
        assert memo.get("fp1", "DMap", "nnz") == 2.0
        assert memo.get("fp2", "MNC", "nnz") == 3.0

    def test_clear(self):
        memo = self._seeded()
        memo.clear()
        assert len(memo) == 0

    def test_stats(self):
        memo = self._seeded()
        memo.get("fp1", "MNC", "nnz")
        memo.get("nope", "MNC", "nnz")
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 3


class TestDependencyInvalidation:
    """Partial invalidation via the ``depends_on`` leaf-dependency index."""

    def test_invalidate_dependency_evicts_derived_entry(self):
        memo = EstimateMemo()
        memo.put("root", "MNC", "nnz", 9.0, depends_on=["leafA", "leafB"])
        memo.put("other", "MNC", "nnz", 5.0, depends_on=["leafC"])
        assert memo.invalidate(fingerprint="leafA") == 1
        assert memo.get("root", "MNC", "nnz") is None
        assert memo.get("other", "MNC", "nnz") == 5.0

    def test_own_fingerprint_still_invalidates(self):
        memo = EstimateMemo()
        memo.put("root", "MNC", "nnz", 9.0, depends_on=["leafA"])
        assert memo.invalidate(fingerprint="root") == 1
        assert memo.get("root", "MNC", "nnz") is None

    def test_estimator_filter_applies_to_dependents(self):
        memo = EstimateMemo()
        memo.put("root", "MNC", "nnz", 9.0, depends_on=["leaf"])
        memo.put("root", "DMap", "nnz", 8.0, depends_on=["leaf"])
        assert memo.invalidate(fingerprint="leaf", estimator="MNC") == 1
        assert memo.get("root", "MNC", "nnz") is None
        assert memo.get("root", "DMap", "nnz") == 8.0

    def test_reput_replaces_dependencies(self):
        memo = EstimateMemo()
        memo.put("root", "MNC", "nnz", 9.0, depends_on=["leafA"])
        memo.put("root", "MNC", "nnz", 10.0, depends_on=["leafB"])
        # The stale leafA edge is gone; only leafB evicts the entry now.
        assert memo.invalidate(fingerprint="leafA") == 0
        assert memo.get("root", "MNC", "nnz") == 10.0
        assert memo.invalidate(fingerprint="leafB") == 1

    def test_lru_eviction_unlinks_dependencies(self):
        memo = EstimateMemo(max_entries=2)
        memo.put("r1", "MNC", "nnz", 1.0, depends_on=["leaf"])
        memo.put("r2", "MNC", "nnz", 2.0)
        memo.put("r3", "MNC", "nnz", 3.0)  # evicts r1
        assert memo.stats()["dependency_tracked"] == 0
        assert memo.invalidate(fingerprint="leaf") == 0

    def test_memoize_records_dependencies(self):
        memo = EstimateMemo()
        memo.memoize("root", "MNC", "nnz", lambda: 4.0, depends_on=["leaf"])
        assert memo.stats()["dependency_tracked"] == 1
        assert memo.invalidate(fingerprint="leaf") == 1

    def test_clear_resets_dependency_index(self):
        memo = EstimateMemo()
        memo.put("root", "MNC", "nnz", 1.0, depends_on=["leaf"])
        memo.clear()
        assert memo.stats()["dependency_tracked"] == 0
        memo.put("fresh", "MNC", "nnz", 2.0, depends_on=["leaf"])
        assert memo.invalidate(fingerprint="leaf") == 1

    def test_shared_dependency_evicts_all_dependents(self):
        memo = EstimateMemo()
        memo.put("r1", "MNC", "nnz", 1.0, depends_on=["leaf"])
        memo.put("r2", "MNC", "nnz", 2.0, depends_on=["leaf", "other"])
        memo.put("r3", "MNC", "nnz", 3.0, depends_on=["other"])
        assert memo.invalidate(fingerprint="leaf") == 2
        assert memo.get("r3", "MNC", "nnz") == 3.0


class TestPartialInvalidationThroughService:
    """A streaming delta on one leaf evicts only results derived from it."""

    def _matrices(self):
        from repro.matrix.random import random_sparse

        a = random_sparse(20, 16, 0.2, seed=11)
        b = random_sparse(16, 12, 0.2, seed=22)
        return a, b

    def test_untouched_subexpression_memo_survives_delta(self):
        import numpy as np

        from repro.catalog.service import EstimationService
        from repro.core.incremental import AppendRows, IncrementalSketch
        from repro.ir.nodes import ewise_mult, leaf, matmul

        a, b = self._matrices()
        service = EstimationService("mnc")
        old_fp_a = service.register(a, name="A")
        fp_b = service.register(b, name="B")

        expr_touched = matmul(leaf(a), leaf(b))
        expr_untouched = ewise_mult(leaf(b), leaf(b))
        touched_root = service.estimate(expr_touched)["fingerprint"]
        untouched_root = service.estimate(expr_untouched)["fingerprint"]
        key = service._estimator_key(service.estimator)
        assert service.memo.get(touched_root, key, "nnz") is not None
        assert service.memo.get(untouched_root, key, "nnz") is not None

        incremental = IncrementalSketch(a)
        delta = AppendRows([np.array([0, 3, 7])])
        new_fp_a = service.apply_update("A", incremental, delta)

        # The delta rebinds the name and evicts exactly the touched slice.
        assert service.resolve("A") == new_fp_a
        assert new_fp_a != old_fp_a
        assert service.memo.get(touched_root, key, "nnz") is None
        assert service.memo.get(untouched_root, key, "nnz") is not None
        # The stale leaf sketch left the store; B's and the patched one stay.
        assert service.store.get(old_fp_a) is None
        assert service.store.get(fp_b) is not None
        patched = service.store.get(new_fp_a)
        assert patched is not None
        assert patched.shape == (21, 16)

        # The untouched expression still answers from the memo.
        assert service.estimate(expr_untouched)["cached"] is True

    def test_repeated_deltas_keep_evicting_current_results(self):
        import numpy as np

        from repro.catalog.service import EstimationService
        from repro.core.incremental import (
            AppendRows,
            DeleteRows,
            IncrementalSketch,
        )
        from repro.core.sketch import MNCSketch
        from repro.ir.nodes import leaf, matmul

        a, b = self._matrices()
        service = EstimationService("mnc")
        service.register(a, name="A")
        service.register(b, name="B")
        incremental = IncrementalSketch(a)

        for delta in (
            AppendRows([np.array([1, 2])]),
            DeleteRows([0]),
            AppendRows([np.array([5])]),
        ):
            fp = service.apply_update("A", incremental, delta)
            stored = service.store.get(fp)
            assert stored is not None
            rebuilt = MNCSketch.from_matrix(incremental.to_matrix())
            np.testing.assert_array_equal(stored.hr, rebuilt.hr)
            np.testing.assert_array_equal(stored.hc, rebuilt.hc)

        # The final stored sketch answers estimation identically to a
        # from-scratch registration of the mutated matrix.
        mutated = incremental.to_matrix()
        fresh = EstimationService("mnc")
        fresh.register(mutated, name="A")
        fresh.register(b, name="B")
        got = service.estimate(matmul(leaf(mutated), leaf(b)))["nnz"]
        want = fresh.estimate(matmul(leaf(mutated), leaf(b)))["nnz"]
        assert got == want


class TestConcurrency:
    def test_parallel_memoize_no_lost_updates(self):
        memo = EstimateMemo()
        barrier = threading.Barrier(4)
        results = []

        def worker(worker_id):
            barrier.wait()
            for index in range(100):
                value = memo.memoize(
                    f"fp{index % 10}", "MNC", "nnz", lambda: float(index % 10)
                )
                results.append(value == float(index % 10))

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results) and len(results) == 400
        assert len(memo) == 10

    def test_memoize_single_writer_per_key(self):
        """Hammer one key from many threads: compute runs exactly once."""
        memo = EstimateMemo()
        barrier = threading.Barrier(8)
        computes = []
        values = []

        def compute():
            computes.append(1)
            time.sleep(0.02)  # widen the window so misses really overlap
            return 42.0

        def worker():
            barrier.wait()
            values.append(memo.memoize("hot", "MNC", "nnz", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(computes) == 1
        assert values == [42.0] * 8
        stats = memo.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 7
        assert stats["compute_waits"] == 7

    def test_memoize_many_keys_compute_once_each(self):
        """Threads race over a keyspace; every key computes exactly once."""
        memo = EstimateMemo()
        barrier = threading.Barrier(8)
        computed = collections.Counter()
        counter_lock = threading.Lock()

        def worker():
            barrier.wait()
            for index in range(200):
                key = f"fp{index % 16}"

                def compute(key=key):
                    with counter_lock:
                        computed[key] += 1
                    return key

                assert memo.memoize(key, "MNC", "nnz", compute) == key

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(computed) == {f"fp{i}" for i in range(16)}
        assert all(calls == 1 for calls in computed.values())

    def test_memoize_failed_compute_promotes_a_waiter(self):
        """A raising compute wakes waiters; one of them recomputes."""
        memo = EstimateMemo()
        barrier = threading.Barrier(2)
        attempts = []
        outcomes = []
        attempts_lock = threading.Lock()

        def compute():
            with attempts_lock:
                attempts.append(1)
                first = len(attempts) == 1
            time.sleep(0.02)
            if first:
                raise RuntimeError("transient failure")
            return 7.0

        def worker():
            barrier.wait()
            try:
                outcomes.append(memo.memoize("flaky", "MNC", "nnz", compute))
            except RuntimeError:
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one caller saw the failure; the survivor recomputed.
        assert sorted(outcomes, key=str) == [7.0, "raised"]
        assert memo.get("flaky", "MNC", "nnz") == 7.0

    def test_concurrent_put_and_memoize_lost_update_free(self):
        """Direct puts racing memoize never leave the memo torn or stale
        relative to both writers (one of the written values survives)."""
        memo = EstimateMemo()
        barrier = threading.Barrier(4)

        def putter():
            barrier.wait()
            for index in range(500):
                memo.put("contended", "MNC", "nnz", 1.0)

        def memoizer():
            barrier.wait()
            for index in range(500):
                value = memo.memoize("contended", "MNC", "nnz", lambda: 1.0)
                assert value == 1.0

        threads = [
            threading.Thread(target=putter),
            threading.Thread(target=putter),
            threading.Thread(target=memoizer),
            threading.Thread(target=memoizer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert memo.get("contended", "MNC", "nnz") == 1.0
