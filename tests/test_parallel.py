"""Tests for the parallel execution engine and its integration points:
the pool engine itself (repro.parallel.engine), DAG spilling
(repro.parallel.spill), the request-based SparsEst API, the service's
parallel batch path, and the fuzz engine's chunked fan-out.

The expensive guarantees (workers=4 vs serial bit-identity over the full
suite, the speedup threshold) live in benchmarks/bench_parallel.py; here
we pin the same contracts on small inputs plus the failure-isolation
behavior a benchmark cannot exercise.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog import EstimationService, ServiceRequest, SketchStore
from repro.errors import ReproError
from repro.estimators.mnc import MNCEstimator
from repro.ir.interpreter import evaluate
from repro.ir.nodes import leaf, matmul, transpose
from repro.matrix.random import random_sparse
from repro.observability.collector import RecordingCollector, using_collector
from repro.observability.metrics import (
    METRICS,
    metric_inc,
    record_residual,
)
from repro.parallel.engine import (
    WORKERS_ENV,
    TaskFailure,
    map_values,
    resolve_workers,
    run_tasks,
)
from repro.parallel.spill import load_dag, spill_dag
from repro.sparsest.runner import (
    EstimationRequest,
    execute,
    execute_outcomes,
    requests_for,
    run_use_case,
)
from repro.sparsest.usecases import get_use_case
from repro.verify.engine import FuzzEngine


# ----------------------------------------------------------------------
# Module-level task functions (workers must be able to import them).
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _die_on_two(x):
    if x == 2:
        os._exit(13)  # hard death: no exception, no cleanup
    return x


def _bump_metric(x):
    metric_inc("test.pmerge.counter")
    record_residual(
        source="pmerge", estimator="E", workload=f"t{x}", op="op",
        estimate=float(x), truth=float(x),
    )
    return x


def _bump_then_fail(x):
    metric_inc("test.pfail.counter")
    if x == 3:
        raise ValueError("three is right out")
    return x


def _bump_or_die(x):
    if x == 2:
        os._exit(13)
    metric_inc("test.pcrash.counter")
    return x


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        assert resolve_workers(None) == 1

    def test_clamps_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestRunTasks:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_in_task_order(self, workers):
        results = run_tasks(_square, list(range(8)), workers=workers)
        assert [r.index for r in results] == list(range(8))
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [i * i for i in range(8)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exception_becomes_failure_not_raise(self, workers):
        results = run_tasks(_fail_on_three, [1, 2, 3, 4], workers=workers)
        assert [r.ok for r in results] == [True, True, False, True]
        failure = results[2].failure
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "ValueError"
        assert "three" in failure.message

    def test_hard_worker_death_surfaces_as_failure(self):
        # os._exit kills the worker without raising; the pool reports
        # BrokenProcessPool. The engine must convert that into failed
        # results and still return a complete, ordered list — not hang.
        results = run_tasks(_die_on_two, [1, 2, 3, 4], workers=2)
        assert len(results) == 4
        assert any(
            not r.ok and r.failure.kind == "BrokenProcessPool" for r in results
        )

    def test_map_values_raises_on_failure(self):
        assert map_values(_square, [1, 2, 3], workers=1) == [1, 4, 9]
        with pytest.raises(RuntimeError, match="parallel task 2 failed"):
            map_values(_fail_on_three, [1, 2, 3], workers=1)

    def test_worker_traces_merge_into_parent(self):
        collector = RecordingCollector()
        with using_collector(collector):
            requests = requests_for(["B1.1"], ["mnc", "meta_wc"], scale=0.05)
            execute_outcomes(requests, workers=2)
        names = [span.name for span in collector.spans]
        assert "sparsest.execute" in names
        assert names.count("sparsest.run") == 2  # one per cell, from workers
        assert len(collector.outcomes) == 2
        assert collector.counters.get("parallel.pool_runs") == 1


# ----------------------------------------------------------------------
# Metric merge-back (PR 6): worker deltas fold into the parent registry
# ----------------------------------------------------------------------

class TestMetricMergeBack:
    def _counter(self, name):
        return METRICS.snapshot(sync_hotpath=False).counters.get(name, 0.0)

    def test_worker_metric_deltas_merge_in_task_order(self):
        before = self._counter("test.pmerge.counter")
        seen_before = len(METRICS.residuals())
        results = run_tasks(_bump_metric, list(range(4)), workers=2)
        assert all(r.ok for r in results)
        assert self._counter("test.pmerge.counter") - before == 4.0
        # Residual ledger entries arrive in task order — deterministic
        # regardless of which worker finished first.
        tail = METRICS.residuals()[seen_before:]
        assert [r.workload for r in tail if r.source == "pmerge"] == [
            "t0", "t1", "t2", "t3",
        ]

    def test_merged_totals_identical_across_runs(self):
        first = self._counter("test.pmerge.counter")
        run_tasks(_bump_metric, list(range(5)), workers=3)
        second = self._counter("test.pmerge.counter")
        run_tasks(_bump_metric, list(range(5)), workers=3)
        third = self._counter("test.pmerge.counter")
        assert second - first == third - second == 5.0

    def test_failed_tasks_still_ship_their_metrics(self):
        # An in-worker exception is caught as a TaskFailure; the metric
        # delta accumulated before the raise still merges back.
        before = self._counter("test.pfail.counter")
        results = run_tasks(_bump_then_fail, [1, 2, 3, 4], workers=2)
        assert [r.ok for r in results] == [True, True, False, True]
        assert self._counter("test.pfail.counter") - before == 4.0

    def test_crashed_workers_contribute_nothing(self):
        # A hard worker death ships no payload: the merged snapshot is
        # exactly the sum of the tasks that completed (ok or failed),
        # never a corrupt partial state.
        before = self._counter("test.pcrash.counter")
        results = run_tasks(_bump_or_die, [1, 2, 3, 4], workers=2)
        assert len(results) == 4
        merged = self._counter("test.pcrash.counter") - before
        survivors = sum(1 for r in results if r.ok)
        assert merged == float(survivors)
        assert merged < 4.0  # the dead task really contributed nothing

    def test_serial_path_writes_metrics_directly(self):
        before = self._counter("test.pmerge.counter")
        run_tasks(_bump_metric, [7], workers=1)
        assert self._counter("test.pmerge.counter") - before == 1.0


# ----------------------------------------------------------------------
# SparsEst request API
# ----------------------------------------------------------------------

class TestExecuteDeterminism:
    def test_parallel_outcomes_bit_identical_to_serial(self):
        requests = requests_for(
            ["B1.1", "B1.2"], ["mnc", "sampling", "meta_wc"], scale=0.05,
        )
        serial = execute_outcomes(requests, workers=1)
        parallel = execute_outcomes(requests, workers=4)
        assert (
            [o.deterministic_key() for o in serial]
            == [o.deterministic_key() for o in parallel]
        )

    def test_unknown_estimator_fails_without_poisoning_batch(self):
        requests = [
            EstimationRequest(use_case="B1.1", estimator="mnc", scale=0.05),
            EstimationRequest(use_case="B1.1", estimator="no_such", scale=0.05),
        ]
        for workers in (1, 2):
            results = execute(requests, workers=workers)
            assert results[0].ok
            assert not results[1].ok
            assert results[1].outcome.status == "failed"
            assert "no_such" in results[1].error

    def test_instance_requests_never_pooled(self):
        # An estimator instance cannot be reconstructed in a worker; the
        # batch must silently run serially and still produce results.
        request = EstimationRequest(
            use_case="B1.1", estimator=MNCEstimator(), scale=0.05,
        )
        results = execute([request, request], workers=4)
        assert all(r.ok for r in results)

    def test_repetitions_must_be_positive(self):
        with pytest.raises(ValueError, match="repetitions"):
            EstimationRequest(use_case="B1.1", estimator="mnc", repetitions=0)

    def test_estimator_options_forwarded(self):
        request = EstimationRequest(
            use_case="B1.1", estimator="mnc",
            estimator_options=(("use_extensions", False),), scale=0.05,
        )
        assert execute([request])[0].ok

    def test_legacy_shim_warns_and_matches_execute(self):
        case = get_use_case("B1.1")
        with pytest.warns(DeprecationWarning, match="run_use_case"):
            old = run_use_case(case, MNCEstimator(), scale=0.05)
        new = execute_outcomes(
            [EstimationRequest(use_case="B1.1", estimator="mnc", scale=0.05)]
        )[0]
        assert old.deterministic_key() == new.deterministic_key()


# ----------------------------------------------------------------------
# DAG spill
# ----------------------------------------------------------------------

class TestSpill:
    def test_roundtrip_preserves_structure_and_sharing(self, tmp_path):
        a = random_sparse(30, 20, 0.2, seed=5)
        shared = leaf(a, name="A")
        root = matmul(shared, transpose(shared))
        portable = spill_dag(root, tmp_path)
        # One distinct leaf → one spilled file, one fingerprint.
        assert len(set(portable.leaf_keys)) == 1
        rebuilt = load_dag(portable, tmp_path)
        assert rebuilt.op is root.op
        assert rebuilt.shape == root.shape
        assert abs(evaluate(rebuilt) - evaluate(root)).nnz == 0
        # Post-order sharing: both children resolve to the same object.
        assert rebuilt.inputs[0] is rebuilt.inputs[1].inputs[0]

    def test_missing_leaf_raises(self, tmp_path):
        a = random_sparse(10, 10, 0.3, seed=6)
        portable = spill_dag(leaf(a), tmp_path)
        for spilled in (tmp_path / "leaves").glob("*.npz"):
            spilled.unlink()
        with pytest.raises(ReproError, match="missing"):
            load_dag(portable, tmp_path)


# ----------------------------------------------------------------------
# Service submit / parallel batch
# ----------------------------------------------------------------------

class TestServiceSubmit:
    def _exprs(self, count=3):
        mats = [random_sparse(40, 30, 0.15, seed=i) for i in range(count)]
        other = random_sparse(30, 25, 0.2, seed=99)
        return [matmul(leaf(m), leaf(other)) for m in mats]

    def test_submit_dispatches_estimate(self):
        expr = self._exprs(1)[0]
        service = EstimationService()
        answer = service.submit(ServiceRequest.estimate(expr))
        assert answer["nnz"] == service.estimate(expr)["nnz"]

    def test_submit_rejects_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown"):
            EstimationService().submit(ServiceRequest(kind="transmogrify"))

    def test_submit_estimate_requires_single_expr(self):
        with pytest.raises(ReproError):
            EstimationService().submit(ServiceRequest(kind="estimate", exprs=()))

    def test_parallel_batch_matches_serial(self, tmp_path):
        exprs = self._exprs(3)
        serial = EstimationService(
            store=SketchStore(spill_dir=tmp_path / "serial")
        ).estimate_many(exprs, workers=1)
        parallel = EstimationService(
            store=SketchStore(spill_dir=tmp_path / "parallel")
        ).estimate_many(exprs, workers=2)
        assert [a["nnz"] for a in serial] == [a["nnz"] for a in parallel]
        assert [a["fingerprint"] for a in serial] == [
            a["fingerprint"] for a in parallel
        ]

    def test_parallel_batch_populates_parent_memo(self):
        exprs = self._exprs(2)
        service = EstimationService()
        service.estimate_many(exprs, workers=2)
        again = service.estimate_many(exprs, workers=2)
        assert all(answer["cached"] for answer in again)


# ----------------------------------------------------------------------
# Fuzz engine chunking
# ----------------------------------------------------------------------

class TestFuzzEngineWorkers:
    CELLS = ["mnc:*:*"]

    def test_report_independent_of_worker_count(self):
        def run(workers):
            return FuzzEngine(
                budget=6, seed=3, cell_patterns=self.CELLS, workers=workers,
            ).run()

        serial, parallel = run(1), run(2)
        assert serial.checked == parallel.checked
        assert serial.skipped == parallel.skipped
        assert set(serial.cells) == set(parallel.cells)
        assert serial.summary_rows() == parallel.summary_rows()

    def test_zero_budget_still_lists_cells(self):
        report = FuzzEngine(
            budget=0, seed=0, cell_patterns=self.CELLS, workers=2,
        ).run()
        assert report.cells
        assert report.checked == 0


# ----------------------------------------------------------------------
# Keyword-only estimator construction
# ----------------------------------------------------------------------

class TestKeywordOnlySignatures:
    def test_positional_construction_rejected(self):
        from repro.estimators.bitset import BitsetEstimator
        from repro.estimators.density_map import DensityMapEstimator
        from repro.estimators.hashing import HashEstimator
        from repro.estimators.layered_graph import LayeredGraphEstimator
        from repro.estimators.quadtree import QuadTreeEstimator

        for cls, arg in [
            (MNCEstimator, True),
            (BitsetEstimator, "vectorized"),
            (DensityMapEstimator, 64),
            (QuadTreeEstimator, 64),
            (LayeredGraphEstimator, 2),
            (HashEstimator, 1024),
        ]:
            with pytest.raises(TypeError):
                cls(arg)

    def test_keyword_construction_accepted(self):
        assert MNCEstimator(use_extensions=False, seed=1).name == "MNC"


class TestWorkerPool:
    """Persistent executor reuse (the serving tier's amortization hook)."""

    def test_pool_reused_across_run_tasks_calls(self):
        from repro.parallel.engine import WorkerPool

        with WorkerPool(workers=2) as pool:
            first = run_tasks(_square, [1, 2, 3, 4], pool=pool)
            executor = pool._executor
            assert executor is not None
            second = run_tasks(_square, [5, 6, 7, 8], pool=pool)
            assert pool._executor is executor  # same executor, no respawn
        assert [r.value for r in first] == [1, 4, 9, 16]
        assert [r.value for r in second] == [25, 36, 49, 64]

    def test_pool_workers_supply_default_count(self):
        from repro.parallel.engine import WorkerPool

        with WorkerPool(workers=2) as pool:
            results = run_tasks(_square, [1, 2, 3], pool=pool)
        assert all(result.ok for result in results)

    def test_broken_pool_recovers_on_next_use(self):
        from repro.parallel.engine import WorkerPool

        with WorkerPool(workers=2) as pool:
            crashed = run_tasks(_die_on_two, [1, 2, 3], pool=pool)
            assert any(not result.ok for result in crashed)
            # The broken executor was discarded; the next batch works.
            healthy = run_tasks(_square, [1, 2, 3, 4], pool=pool)
            assert [r.value for r in healthy] == [1, 4, 9, 16]

    def test_serial_fallback_ignores_pool(self):
        from repro.parallel.engine import WorkerPool

        with WorkerPool(workers=1) as pool:
            results = run_tasks(_square, [1, 2, 3], pool=pool)
            assert pool._executor is None  # never spawned
        assert [r.value for r in results] == [1, 4, 9]

    def test_close_is_idempotent(self):
        from repro.parallel.engine import WorkerPool

        pool = WorkerPool(workers=2)
        run_tasks(_square, [1, 2], pool=pool)
        pool.close()
        pool.close()
