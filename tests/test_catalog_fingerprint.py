"""Tests for structural fingerprints (repro.catalog.fingerprint)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.catalog.fingerprint import (
    fingerprint_dag,
    fingerprint_expr,
    fingerprint_matrix,
    fingerprint_sketch,
)
from repro.core.sketch import MNCSketch
from repro.ir.nodes import leaf, matmul, reshape, transpose
from repro.matrix.random import random_sparse


class TestMatrixFingerprint:
    def test_deterministic_across_objects(self):
        a = random_sparse(50, 40, 0.1, seed=7)
        b = random_sparse(50, 40, 0.1, seed=7)
        assert a is not b
        assert fingerprint_matrix(a) == fingerprint_matrix(b)

    def test_structure_only_values_ignored(self):
        a = random_sparse(30, 30, 0.2, seed=1)
        doubled = a * 2.0
        assert fingerprint_matrix(a) == fingerprint_matrix(doubled)

    def test_different_patterns_differ(self):
        a = random_sparse(30, 30, 0.2, seed=1)
        b = random_sparse(30, 30, 0.2, seed=2)
        assert fingerprint_matrix(a) != fingerprint_matrix(b)

    def test_shape_is_part_of_identity(self):
        empty_a = sp.csr_array((5, 6))
        empty_b = sp.csr_array((6, 5))
        assert fingerprint_matrix(empty_a) != fingerprint_matrix(empty_b)

    def test_explicit_zeros_do_not_perturb(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        with_explicit = sp.csr_array(
            (np.array([1.0, 0.0, 2.0]), np.array([0, 1, 1]),
             np.array([0, 2, 3])),
            shape=(2, 2),
        )
        assert fingerprint_matrix(dense) == fingerprint_matrix(with_explicit)

    def test_dense_input_accepted(self):
        dense = np.eye(4)
        assert fingerprint_matrix(dense) == fingerprint_matrix(sp.csr_array(dense))

    def test_memoized_per_object(self):
        a = random_sparse(20, 20, 0.3, seed=3)
        assert fingerprint_matrix(a) == fingerprint_matrix(a)


class TestSketchFingerprint:
    def test_round_trip_stable(self):
        sketch = MNCSketch.from_matrix(random_sparse(40, 30, 0.2, seed=4))
        rebuilt = MNCSketch(
            shape=sketch.shape, hr=sketch.hr.copy(), hc=sketch.hc.copy(),
            her=None if sketch.her is None else sketch.her.copy(),
            hec=None if sketch.hec is None else sketch.hec.copy(),
            fully_diagonal=sketch.fully_diagonal, exact=sketch.exact,
        )
        assert fingerprint_sketch(sketch) == fingerprint_sketch(rebuilt)

    def test_extensions_part_of_identity(self):
        sketch = MNCSketch.from_matrix(random_sparse(40, 30, 0.2, seed=4))
        if sketch.has_extensions:
            assert fingerprint_sketch(sketch) != fingerprint_sketch(
                sketch.without_extensions()
            )

    def test_flags_part_of_identity(self):
        sketch = MNCSketch.from_matrix(np.eye(6))
        relaxed = MNCSketch(
            shape=sketch.shape, hr=sketch.hr, hc=sketch.hc,
            her=sketch.her, hec=sketch.hec,
            fully_diagonal=False, exact=sketch.exact,
        )
        assert fingerprint_sketch(sketch) != fingerprint_sketch(relaxed)


class TestExprFingerprint:
    def test_leaf_equals_matrix_fingerprint(self):
        a = random_sparse(25, 25, 0.2, seed=5)
        assert fingerprint_expr(leaf(a)) == fingerprint_matrix(a)

    def test_rebuilt_dag_matches(self):
        a = random_sparse(25, 20, 0.2, seed=5)
        b = random_sparse(20, 30, 0.2, seed=6)
        first = matmul(leaf(a), leaf(b))
        second = matmul(leaf(a.copy()), leaf(b.copy()))
        assert fingerprint_expr(first) == fingerprint_expr(second)

    def test_operand_order_matters(self):
        a = random_sparse(20, 20, 0.2, seed=5)
        b = random_sparse(20, 20, 0.2, seed=6)
        assert fingerprint_expr(matmul(leaf(a), leaf(b))) != fingerprint_expr(
            matmul(leaf(b), leaf(a))
        )

    def test_op_part_of_identity(self):
        a = random_sparse(20, 20, 0.2, seed=5)
        assert fingerprint_expr(transpose(leaf(a))) != fingerprint_expr(leaf(a))

    def test_params_part_of_identity(self):
        a = random_sparse(12, 10, 0.3, seed=5)
        assert fingerprint_expr(reshape(leaf(a), 10, 12)) != fingerprint_expr(
            reshape(leaf(a), 4, 30)
        )

    def test_names_are_cosmetic(self):
        a = random_sparse(20, 20, 0.2, seed=5)
        assert fingerprint_expr(leaf(a, name="X")) == fingerprint_expr(
            leaf(a, name="Y")
        )

    def test_dag_yields_every_node(self):
        a = random_sparse(15, 15, 0.2, seed=5)
        x = leaf(a)
        root = matmul(x, transpose(x))
        fingerprints = fingerprint_dag(root)
        assert set(fingerprints) == {id(node) for node in root.postorder()}

    def test_shared_subdag_fingerprints_once(self):
        a = random_sparse(15, 15, 0.2, seed=5)
        x = leaf(a)
        shared = matmul(x, x)
        root = matmul(shared, shared)
        fingerprints = fingerprint_dag(root)
        # The same structural key is reused wherever the node appears.
        assert fingerprints[id(shared)] == fingerprint_expr(matmul(x, x))
