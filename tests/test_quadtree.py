"""Tests for the dynamic (quad-tree) density map estimator."""

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.estimators.quadtree import QuadTreeEstimator, QuadTreeSynopsis
from repro.matrix import ops as mops
from repro.matrix.random import outer_product_pair, random_sparse
from repro.opcodes import Op


@pytest.fixture
def qtree():
    return QuadTreeEstimator(leaf_nnz=32, min_block=4)


class TestConstruction:
    def test_root_count_is_exact(self, qtree):
        matrix = random_sparse(64, 48, 0.1, seed=1)
        synopsis = qtree.build(matrix)
        assert synopsis.nnz_estimate == matrix.nnz
        assert synopsis.shape == (64, 48)

    def test_leaf_counts_partition_total(self, qtree):
        matrix = random_sparse(80, 80, 0.15, seed=2)
        synopsis = qtree.build(matrix)
        assert sum(leaf.nnz for leaf in synopsis.leaves()) == matrix.nnz

    def test_leaves_tile_the_matrix(self, qtree):
        matrix = random_sparse(40, 60, 0.2, seed=3)
        synopsis = qtree.build(matrix)
        covered = sum(leaf.cells for leaf in synopsis.leaves())
        assert covered == 40 * 60

    def test_adaptive_size_empty_regions_cheap(self, qtree):
        # All mass in one corner: the tree refines only there, staying far
        # below the full fine grid's (128/4)^2 = 1024 blocks.
        dense_corner = np.zeros((128, 128))
        dense_corner[:16, :16] = 1.0
        corner_nodes = qtree.build(dense_corner).node_count
        assert corner_nodes < 128  # deep only inside the corner

    def test_sparse_input_smaller_than_fixed_fine_grid(self, qtree):
        matrix = random_sparse(512, 512, 0.001, seed=5)
        adaptive = qtree.build(matrix).size_bytes()
        fixed_fine = make_estimator("density_map", block_size=4).build(matrix)
        assert adaptive < fixed_fine.size_bytes()

    def test_empty_matrix(self, qtree):
        synopsis = qtree.build(np.zeros((16, 16)))
        assert synopsis.nnz_estimate == 0
        assert synopsis.node_count == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuadTreeEstimator(leaf_nnz=0)
        with pytest.raises(ValueError):
            QuadTreeEstimator(min_block=0)


class TestRasterization:
    def test_preserves_total(self, qtree):
        matrix = random_sparse(70, 50, 0.2, seed=6)
        synopsis = qtree.build(matrix)
        grid = synopsis.rasterize(4)
        assert grid.nnz_estimate == pytest.approx(matrix.nnz, rel=1e-9)

    def test_localizes_corner_mass(self, qtree):
        dense_corner = np.zeros((64, 64))
        dense_corner[:8, :8] = 1.0
        grid = qtree.build(dense_corner).rasterize(8)
        assert grid.density[0, 0] == pytest.approx(1.0)
        assert grid.density[4, 4] == pytest.approx(0.0)


class TestEstimation:
    def test_product_accuracy_on_uniform(self, qtree):
        a = random_sparse(128, 96, 0.08, seed=7)
        b = random_sparse(96, 120, 0.08, seed=8)
        truth = mops.matmul(a, b).nnz
        estimate = qtree.estimate_nnz(Op.MATMUL, [qtree.build(a), qtree.build(b)])
        assert truth / 1.3 <= estimate <= truth * 1.3

    def test_beats_coarse_fixed_map_on_block_structure(self):
        # Mass concentrated in one corner of both operands: a 256-block
        # fixed map sees uniform blocks, the quad tree refines the corner.
        a = np.zeros((256, 256))
        b = np.zeros((256, 256))
        rng = np.random.default_rng(9)
        a[:32, :32] = rng.random((32, 32)) < 0.5
        b[:32, :32] = rng.random((32, 32)) < 0.5
        truth = mops.matmul(a, b).nnz
        qtree = QuadTreeEstimator(leaf_nnz=64, min_block=8)
        q_estimate = qtree.estimate_nnz(Op.MATMUL, [qtree.build(a), qtree.build(b)])
        coarse = make_estimator("density_map", block_size=256)
        c_estimate = coarse.estimate_nnz(Op.MATMUL, [coarse.build(a), coarse.build(b)])
        q_error = max(truth, q_estimate) / max(min(truth, q_estimate), 1e-9)
        c_error = max(truth, c_estimate) / max(min(truth, c_estimate), 1e-9)
        assert q_error < c_error

    def test_still_fails_on_outer_case(self, qtree):
        # The paper's reservation holds: alignment by rasterization cannot
        # represent a single dense column meeting a dense row either.
        column, row = outer_product_pair(64)
        estimate = qtree.estimate_nnz(
            Op.MATMUL, [qtree.build(column), qtree.build(row)]
        )
        assert estimate < 64 * 64 / 2

    def test_ewise_ops(self, qtree):
        a = random_sparse(64, 64, 0.2, seed=10)
        b = random_sparse(64, 64, 0.2, seed=11)
        sa, sb = qtree.build(a), qtree.build(b)
        add = qtree.estimate_nnz(Op.EWISE_ADD, [sa, sb])
        mult = qtree.estimate_nnz(Op.EWISE_MULT, [sa, sb])
        assert mops.ewise_add(a, b).nnz / 1.3 <= add <= mops.ewise_add(a, b).nnz * 1.3
        assert 0 <= mult <= min(a.nnz, b.nnz) * 2

    def test_transpose_exact_tree(self, qtree):
        matrix = random_sparse(30, 50, 0.2, seed=12)
        transposed = qtree.propagate(Op.TRANSPOSE, [qtree.build(matrix)])
        assert isinstance(transposed, QuadTreeSynopsis)
        assert transposed.shape == (50, 30)
        assert transposed.nnz_estimate == matrix.nnz

    def test_eq_zero_complement(self, qtree):
        matrix = random_sparse(32, 32, 0.3, seed=13)
        complement = qtree.propagate(Op.EQ_ZERO, [qtree.build(matrix)])
        assert complement.nnz_estimate == 32 * 32 - matrix.nnz

    def test_chain_propagation(self, qtree):
        a = random_sparse(64, 64, 0.1, seed=14)
        b = random_sparse(64, 64, 0.1, seed=15)
        c = random_sparse(64, 64, 0.1, seed=16)
        ab = qtree.propagate(Op.MATMUL, [qtree.build(a), qtree.build(b)])
        estimate = qtree.estimate_nnz(Op.MATMUL, [ab, qtree.build(c)])
        truth = mops.matmul(mops.matmul(a, b), c).nnz
        assert truth / 1.5 <= estimate <= truth * 1.5
