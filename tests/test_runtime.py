"""Tests for the runtime layer: format decisions, allocation, execution."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.estimators import make_estimator
from repro.ir import leaf, matmul, neq_zero
from repro.matrix.random import outer_product_pair, random_sparse, single_nnz_per_row
from repro.runtime import (
    SPARSE_FORMAT_THRESHOLD,
    MatrixFormat,
    choose_format,
    execute_with_decisions,
    memory_bytes,
    plan_allocation,
)
from repro.runtime.allocator import AllocationReport
from repro.runtime.formats import optimal_memory_bytes


class TestFormats:
    def test_threshold_rule(self):
        assert choose_format(0.0) is MatrixFormat.SPARSE
        assert choose_format(0.39) is MatrixFormat.SPARSE
        assert choose_format(SPARSE_FORMAT_THRESHOLD) is MatrixFormat.DENSE
        assert choose_format(1.0) is MatrixFormat.DENSE

    def test_custom_threshold(self):
        assert choose_format(0.2, threshold=0.1) is MatrixFormat.DENSE

    def test_invalid_sparsity(self):
        with pytest.raises(ShapeError):
            choose_format(1.5)

    def test_dense_memory(self):
        assert memory_bytes(100, 50, 0, MatrixFormat.DENSE) == 100 * 50 * 8

    def test_sparse_memory(self):
        expected = 10 * 12 + 11 * 4
        assert memory_bytes(10, 20, 10, MatrixFormat.SPARSE) == expected

    def test_sparse_memory_grows_past_dense(self):
        m, n = 100, 100
        dense = memory_bytes(m, n, m * n, MatrixFormat.DENSE)
        sparse_full = memory_bytes(m, n, m * n, MatrixFormat.SPARSE)
        assert sparse_full > dense

    def test_nnz_bounds_checked(self):
        with pytest.raises(ShapeError):
            memory_bytes(2, 2, 5, MatrixFormat.SPARSE)

    def test_optimal_picks_minimum(self):
        assert optimal_memory_bytes(100, 100, 10) == memory_bytes(
            100, 100, 10, MatrixFormat.SPARSE
        )
        assert optimal_memory_bytes(100, 100, 10_000) == memory_bytes(
            100, 100, 10_000, MatrixFormat.DENSE
        )


class TestAllocation:
    def test_perfect_estimate_no_regret(self):
        decision = plan_allocation("op", (100, 100), 500, 500)
        assert decision.format_correct
        assert decision.regret_bytes == 0.0
        assert decision.over_allocated_bytes == 0.0
        assert decision.under_allocated_bytes == 0.0

    def test_wrong_dense_allocation_of_sparse_output(self):
        # Estimator says dense (nnz 9000 of 10000), truth is ultra-sparse.
        decision = plan_allocation("op", (100, 100), 9000, 50)
        assert decision.chosen_format is MatrixFormat.DENSE
        assert decision.optimal_format is MatrixFormat.SPARSE
        assert not decision.format_correct
        assert decision.over_allocated_bytes > 0
        assert decision.regret_bytes > 0

    def test_wrong_sparse_allocation_of_dense_output(self):
        decision = plan_allocation("op", (100, 100), 100, 10_000)
        assert decision.chosen_format is MatrixFormat.SPARSE
        assert decision.under_allocated_bytes > 0

    def test_estimate_clamped_to_cells(self):
        decision = plan_allocation("op", (10, 10), 1e9, 50)
        assert decision.estimated_nnz == 100.0

    def test_report_aggregation(self):
        report = AllocationReport()
        report.add(plan_allocation("a", (10, 10), 50, 50))
        report.add(plan_allocation("b", (10, 10), 90, 5))
        assert report.total == 2
        assert report.wrong_format_count == 1
        assert report.regret_bytes > 0
        assert 0 <= report.regret_ratio

    def test_empty_report(self):
        report = AllocationReport()
        assert report.regret_ratio == 0.0
        assert report.total == 0


class TestExecutor:
    def test_mnc_perfect_on_structured_product(self):
        tokens = single_nnz_per_row(200, 50, seed=1)
        data = random_sparse(50, 30, 0.2, seed=2)
        root = matmul(leaf(tokens, "X"), leaf(data, "W"))
        summary = execute_with_decisions(root, make_estimator("mnc"))
        assert summary.operations == 1
        assert summary.wrong_formats == 0
        assert summary.report.regret_bytes == 0.0

    def test_metawc_wastes_on_sparse_output(self):
        # MetaWC declares the single-non-zero inner product (B1.5) dense.
        column, row = outer_product_pair(200)
        root = matmul(leaf(row, "R"), leaf(column, "C"))
        wc_summary = execute_with_decisions(root, make_estimator("meta_wc"))
        mnc_summary = execute_with_decisions(root, make_estimator("mnc"))
        assert wc_summary.report.regret_bytes > mnc_summary.report.regret_bytes
        assert mnc_summary.report.regret_bytes == 0.0

    def test_multi_operation_dag(self):
        a = random_sparse(40, 40, 0.1, seed=3)
        b = random_sparse(40, 40, 0.1, seed=4)
        root = neq_zero(matmul(leaf(a), leaf(b)))
        summary = execute_with_decisions(root, make_estimator("mnc"))
        assert summary.operations == 2  # matmul + neq_zero

    def test_exact_oracle_is_always_optimal(self):
        a = random_sparse(30, 30, 0.3, seed=5)
        b = random_sparse(30, 30, 0.3, seed=6)
        root = matmul(leaf(a), leaf(b))
        summary = execute_with_decisions(root, make_estimator("exact"))
        assert summary.wrong_formats == 0
        assert summary.report.regret_bytes == 0.0
