"""Adaptive estimator routing (``estimator="auto"``), end to end.

Covers the tier ladder, escalation/stop behavior against the tolerance,
the residual-fed :class:`RoutingPolicy` (snapshot / merge / persistence),
probe determinism, and the headline promise: routed results are
bit-identical across worker counts and over HTTP.
"""

import json

import pytest

from repro.catalog.service import EstimationService, ServiceRequest
from repro.catalog.sharded import ShardedSketchStore
from repro.catalog.store import SketchStore
from repro.errors import EstimatorOptionError, ReproError
from repro.estimators import available_estimators
from repro.estimators.spec import EstimatorSpec
from repro.ir.interpreter import evaluate
from repro.ir.nodes import leaf
from repro.matrix.random import random_sparse
from repro.router import (
    POLICY_FILENAME,
    TIER_LADDER,
    AdaptiveRouter,
    RoutingPolicy,
    admissible_tiers,
    derive_tier_seed,
    estimator_catalog,
    probe_hardness,
)


def _product(seed=0, m=60, k=40, n=50, density=0.08):
    a = random_sparse(m, k, density, seed=seed)
    b = random_sparse(k, n, density, seed=seed + 1)
    return leaf(a, name="A") @ leaf(b, name="B")


class TestTierLadder:
    def test_costs_strictly_increase_metadata_to_exact(self):
        costs = [tier.cost for tier in TIER_LADDER]
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)
        assert TIER_LADDER[0].name == "meta_ac"
        assert TIER_LADDER[-1].name == "exact"

    def test_admissible_tiers_always_end_in_exact(self):
        tiers = admissible_tiers(_product())
        assert tiers
        assert tiers[-1].name == "exact"

    def test_estimator_catalog_matches_registry(self):
        rows = estimator_catalog()
        assert [row["name"] for row in rows] == available_estimators()
        ladder_names = {tier.name for tier in TIER_LADDER}
        for row in rows:
            if row["name"] in ladder_names:
                assert isinstance(row["cost_tier"], int)
            else:
                assert row["cost_tier"] is None

    def test_tier_seed_derivation_stable_and_distinct(self):
        assert derive_tier_seed(1, "fp", "mnc") == derive_tier_seed(1, "fp", "mnc")
        assert derive_tier_seed(1, "fp", "mnc") != derive_tier_seed(2, "fp", "mnc")
        assert derive_tier_seed(1, "fp", "mnc") != derive_tier_seed(1, "fp", "hash")


class TestEscalation:
    def test_loose_tolerance_stops_at_metadata(self):
        router = AdaptiveRouter(tolerance=10.0, seed=0)
        _, decision = router.route(_product())
        assert decision.tier == "meta_ac"
        assert decision.escalations == 0
        assert decision.width <= decision.tolerance

    def test_tight_tolerance_escalates_to_certified_exact(self):
        root = _product()
        router = AdaptiveRouter(tolerance=1e-9, seed=0)
        nnz, decision = router.route(root)
        assert decision.tier == "exact"
        assert decision.certified
        assert decision.width == 0.0
        assert decision.escalations >= 1
        assert nnz == float(evaluate(root).nnz)

    def test_policy_band_tiers_are_preskipped_not_run(self):
        # dmap/sampling/hash cannot shrink their width by running (the
        # band is known before evaluation), so with an untrained policy
        # and a tolerance below their priors they are skipped.
        router = AdaptiveRouter(tolerance=0.3, seed=0)
        _, decision = router.route(_product())
        for name in ("density_map", "sampling", "hash"):
            assert name not in decision.tiers_tried
        assert decision.skipped >= 3

    def test_leaf_short_circuits_to_exact(self):
        matrix = random_sparse(30, 20, 0.1, seed=3)
        router = AdaptiveRouter(tolerance=0.5)
        nnz, decision = router.route(leaf(matrix, name="A"))
        assert nnz == float(matrix.nnz)
        assert decision.tier == "exact"
        assert decision.width == 0.0

    def test_route_deterministic_across_fresh_instances(self):
        first = AdaptiveRouter(tolerance=0.25, seed=42).route(_product(seed=5))
        second = AdaptiveRouter(tolerance=0.25, seed=42).route(_product(seed=5))
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_bad_tolerance_rejected(self):
        with pytest.raises(EstimatorOptionError):
            AdaptiveRouter(tolerance=-1.0)


class TestRoutingPolicy:
    def test_trained_band_unlocks_cheap_tier(self):
        # Feed the policy many near-perfect DMap residuals: its learned
        # band shrinks below the tolerance, so the router now stops at
        # density_map instead of escalating past it.
        policy = RoutingPolicy()
        for _ in range(200):
            policy.observe("DMap", op="matmul", relative_error=1.01)
        trained = AdaptiveRouter(tolerance=0.2, seed=0, policy=policy)
        _, decision = trained.route(_product())
        assert decision.tier == "density_map"

        untrained = AdaptiveRouter(tolerance=0.2, seed=0)
        _, base = untrained.route(_product())
        assert base.tier != "density_map"

    def test_snapshot_roundtrip_and_merge(self):
        policy = RoutingPolicy()
        policy.observe("MNC", op="matmul", relative_error=1.2, seconds=0.01)
        clone = RoutingPolicy.from_snapshot(policy.snapshot())
        assert clone.snapshot() == policy.snapshot()

        other = RoutingPolicy()
        other.observe("Hash", op="matmul", relative_error=1.5)
        clone.merge(other)
        assert clone.observation_count("Hash") > 0
        assert clone.observation_count("MNC") > 0

    def test_future_snapshot_version_rejected(self):
        payload = RoutingPolicy().snapshot()
        payload["version"] = 99
        with pytest.raises(ReproError):
            RoutingPolicy.from_snapshot(payload)

    def test_save_and_load(self, tmp_path):
        policy = RoutingPolicy()
        policy.observe("MNC", op="matmul", relative_error=1.1)
        policy.save(str(tmp_path))
        assert (tmp_path / POLICY_FILENAME).exists()
        loaded = RoutingPolicy.load(str(tmp_path))
        assert loaded is not None
        assert loaded.snapshot() == policy.snapshot()
        assert RoutingPolicy.load(str(tmp_path / "missing")) is None
        assert RoutingPolicy.load(None) is None

    def test_predicted_error_prior_fallback(self):
        policy = RoutingPolicy()
        assert policy.predicted_error("Unseen", prior=None) is None
        assert policy.predicted_error("Unseen", prior=2.5) == 2.5

    def test_non_finite_and_sub_one_errors_ignored(self):
        policy = RoutingPolicy()
        policy.observe("MNC", relative_error=float("inf"))
        policy.observe("MNC", relative_error=0.5)
        assert policy.observation_count("MNC") == 0

    def test_sync_from_registry_is_incremental(self):
        from repro.observability.metrics import MetricsRegistry, ResidualRecord

        registry = MetricsRegistry()
        policy = RoutingPolicy()

        def residual(estimate):
            registry.record_residual(ResidualRecord(
                source="router", estimator="MNC", workload="w", op="matmul",
                estimate=estimate, truth=100.0,
                relative_error=max(estimate, 100.0) / min(estimate, 100.0),
            ))

        residual(110.0)
        assert policy.sync_from_registry(registry) == 1
        assert policy.sync_from_registry(registry) == 0  # nothing new
        residual(120.0)
        assert policy.sync_from_registry(registry) == 1
        assert policy.observation_count("MNC") == 2


class TestProbe:
    def test_probe_deterministic(self):
        first = probe_hardness(_product(seed=2), seed=7)
        second = probe_hardness(_product(seed=2), seed=7)
        assert first == second
        assert first.hardness in ("easy", "medium", "hard")

    def test_probe_option_via_spec(self):
        spec = EstimatorSpec.parse(
            {"name": "auto", "tolerance": 0.5, "options": {"probe": True}}
        )
        router = AdaptiveRouter.from_spec(spec)
        _, decision = router.route(_product())
        assert decision.probe is not None
        assert decision.probe.hardness in ("easy", "medium", "hard")

    def test_unknown_router_option_rejected(self):
        spec = EstimatorSpec.parse(
            {"name": "auto", "tolerance": 0.5, "options": {"bogus": 1}}
        )
        with pytest.raises(EstimatorOptionError):
            AdaptiveRouter.from_spec(spec)


class TestServiceRouting:
    AUTO = {"name": "auto", "tolerance": 0.3, "seed": 9}

    def test_routed_result_carries_router_payload(self):
        service = EstimationService(
            EstimatorSpec.parse({"name": "auto", "tolerance": 0.4, "seed": 1})
        )
        result = service.submit(ServiceRequest.estimate(_product()))
        meta = result["router"]
        assert meta["tier"] in {tier.name for tier in TIER_LADDER}
        assert meta["width"] <= meta["tolerance"]
        again = service.submit(ServiceRequest.estimate(_product()))
        assert again["cached"] is True
        assert again["nnz"] == result["nnz"]
        assert again["router"] == result["router"]

    def test_per_request_estimator_override(self):
        service = EstimationService("mnc")
        routed = service.submit(
            ServiceRequest.estimate(_product(), tolerance=0.4)
        )
        assert "router" in routed
        plain = service.submit(ServiceRequest.estimate(_product(seed=30)))
        assert "router" not in plain

    def test_batch_workers_bit_identical(self):
        exprs = [_product(seed=index * 10) for index in range(4)]
        serial = EstimationService(EstimatorSpec.parse(self.AUTO)).submit(
            ServiceRequest.batch(exprs, workers=1)
        )
        parallel = EstimationService(EstimatorSpec.parse(self.AUTO)).submit(
            ServiceRequest.batch(exprs, workers=3)
        )
        assert [r["nnz"] for r in serial] == [r["nnz"] for r in parallel]
        assert [r["router"] for r in serial] == [r["router"] for r in parallel]

    def test_stats_expose_router(self):
        service = EstimationService(
            EstimatorSpec.parse({"name": "auto", "tolerance": 0.5})
        )
        service.submit(ServiceRequest.estimate(_product()))
        stats = service.stats()
        assert stats["router"]["tolerance"] == 0.5
        assert stats["router"]["ladder"] == [t.name for t in TIER_LADDER]

    def test_policy_persisted_alongside_catalog(self, tmp_path):
        service = EstimationService(
            EstimatorSpec.parse({"name": "auto", "tolerance": 0.5}),
            store=SketchStore(spill_dir=str(tmp_path)),
        )
        service.submit(ServiceRequest.estimate(_product()))
        service.persist(str(tmp_path))
        assert (tmp_path / POLICY_FILENAME).exists()
        payload = json.loads((tmp_path / POLICY_FILENAME).read_text())
        assert payload["version"] >= 1


class TestRunnerRouting:
    def test_auto_workers_bit_identical(self):
        from repro.sparsest.runner import (
            clear_truth_cache,
            execute_outcomes,
            requests_for,
        )

        requests = requests_for(
            ["B1.1", "B1.2"], ["auto"], scale=0.04, seed=3, tolerance=0.4
        )
        serial = [o.deterministic_key() for o in execute_outcomes(requests, workers=1)]
        clear_truth_cache()
        parallel = [
            o.deterministic_key() for o in execute_outcomes(requests, workers=2)
        ]
        assert serial == parallel
        assert all(key[1] == "Auto" for key in serial)


@pytest.fixture()
def routed_server():
    from repro.serve import EstimationServer, ServeClient, start_server_thread

    service = EstimationService(
        "mnc", store=ShardedSketchStore(num_shards=2)
    )
    handle = start_server_thread(EstimationServer(service=service, port=0))
    client = ServeClient(handle.host, handle.port)
    try:
        yield client
    finally:
        client.close()
        handle.stop()


MATMUL_XW = {"op": "matmul", "inputs": [{"ref": "X"}, {"ref": "W"}]}


class TestServeRouting:
    def _register(self, client):
        x = random_sparse(50, 40, 0.1, seed=11)
        w = random_sparse(40, 30, 0.15, seed=12)
        client.register("X", x)
        client.register("W", w)
        return x, w

    def test_http_auto_estimate_and_cache(self, routed_server):
        client = routed_server
        self._register(client)
        spec = {"name": "auto", "tolerance": 0.4, "seed": 3}
        result = client.estimate(MATMUL_XW, estimator=spec)
        assert result["router"]["tolerance"] == 0.4
        assert result["router"]["width"] <= 0.4
        again = client.estimate(MATMUL_XW, estimator=spec)
        assert again["cached"] is True
        assert again["nnz"] == result["nnz"]
        assert again["router"] == result["router"]

    def test_http_matches_local_routing(self, routed_server):
        client = routed_server
        x, w = self._register(client)
        result = client.estimate(
            MATMUL_XW, estimator={"name": "auto", "seed": 3}, tolerance=0.4
        )
        local_nnz, local_decision = AdaptiveRouter(tolerance=0.4, seed=3).route(
            leaf(x, name="X") @ leaf(w, name="W")
        )
        assert result["nnz"] == local_nnz
        assert result["router"]["tier"] == local_decision.tier
        assert result["router"]["escalations"] == local_decision.escalations

    def test_bare_tolerance_implies_auto(self, routed_server):
        client = routed_server
        self._register(client)
        result = client.estimate(MATMUL_XW, tolerance=0.4)
        assert "router" in result

    def test_unknown_estimator_is_structured_400(self, routed_server):
        from repro.serve.client import ServeClientError

        client = routed_server
        self._register(client)
        with pytest.raises(ServeClientError) as info:
            client.estimate(MATMUL_XW, estimator="bogus")
        assert info.value.status == 400
        assert info.value.details["available_estimators"] == available_estimators()

    def test_chain_rejects_estimator_selection(self, routed_server):
        from repro.serve.client import ServeClientError

        client = routed_server
        self._register(client)
        with pytest.raises(ServeClientError) as info:
            client.request(
                "POST", "/estimate", {"chain": ["X", "W"], "estimator": "auto"}
            )
        assert info.value.status == 400

    def test_router_metrics_and_stats_exported(self, routed_server):
        client = routed_server
        self._register(client)
        client.estimate(MATMUL_XW, tolerance=0.4)
        stats = client.stats()
        assert "router" in stats["catalog"]
        assert "router" in client.metrics_text()


class TestCliRouting:
    def test_estimators_table(self, capsys):
        from repro.cli import main

        assert main(["estimators"]) == 0
        out = capsys.readouterr().out
        assert "auto" in out
        assert "mnc" in out

    def test_estimators_json_matches_registry(self, capsys):
        from repro.cli import main

        assert main(["estimators", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in payload["estimators"]] == (
            available_estimators()
        )

    def test_estimate_tolerance_implies_auto(self, tmp_path, capsys):
        from repro.cli import main
        from repro.matrix.io import save_matrix

        save_matrix(str(tmp_path / "a.npz"), random_sparse(60, 40, 0.08, seed=1))
        save_matrix(str(tmp_path / "b.npz"), random_sparse(40, 50, 0.08, seed=2))
        code = main([
            "estimate", str(tmp_path / "a.npz"), str(tmp_path / "b.npz"),
            "--tolerance", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "router: tier" in out
