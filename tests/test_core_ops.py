"""Unit tests for Section-4 MNC estimation and propagation (non-product ops)."""

import numpy as np
import pytest

from repro.core import ops as core_ops
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.matrix import ops as mops
from repro.matrix.conversion import as_csr
from repro.matrix.random import random_sparse, single_nnz_per_row


def sketch_of(matrix):
    return MNCSketch.from_matrix(matrix)


class TestTranspose:
    def test_swaps_axes_exactly(self):
        matrix = random_sparse(10, 20, 0.3, seed=1)
        h = sketch_of(matrix)
        h_t = core_ops.propagate_transpose(h)
        expected = sketch_of(mops.transpose(matrix))
        np.testing.assert_array_equal(h_t.hr, expected.hr)
        np.testing.assert_array_equal(h_t.hc, expected.hc)
        assert h_t.shape == (20, 10)

    def test_swaps_extensions(self):
        matrix = np.array([[1, 1, 0], [1, 0, 0], [0, 0, 1]])
        h = sketch_of(matrix)
        h_t = core_ops.propagate_transpose(h)
        expected = sketch_of(matrix.T)
        np.testing.assert_array_equal(h_t.her, expected.her)
        np.testing.assert_array_equal(h_t.hec, expected.hec)

    def test_involution(self):
        matrix = random_sparse(7, 9, 0.4, seed=2)
        h = sketch_of(matrix)
        back = core_ops.propagate_transpose(core_ops.propagate_transpose(h))
        np.testing.assert_array_equal(back.hr, h.hr)
        np.testing.assert_array_equal(back.hc, h.hc)


class TestIndicators:
    def test_neq_zero_is_shallow(self):
        h = sketch_of(random_sparse(5, 5, 0.5, seed=3))
        assert core_ops.propagate_not_equals_zero(h) is h

    def test_eq_zero_complements_exactly(self):
        matrix = random_sparse(8, 12, 0.3, seed=4)
        h_c = core_ops.propagate_equals_zero(sketch_of(matrix))
        expected = sketch_of(mops.equals_zero(matrix))
        np.testing.assert_array_equal(h_c.hr, expected.hr)
        np.testing.assert_array_equal(h_c.hc, expected.hc)


class TestBind:
    def test_rbind_exact(self):
        a = random_sparse(6, 10, 0.3, seed=5)
        b = random_sparse(4, 10, 0.4, seed=6)
        h = core_ops.propagate_rbind(sketch_of(a), sketch_of(b))
        expected = sketch_of(mops.rbind(a, b))
        np.testing.assert_array_equal(h.hr, expected.hr)
        np.testing.assert_array_equal(h.hc, expected.hc)

    def test_rbind_hec_exact(self):
        a = np.array([[1, 1], [1, 0]])
        b = np.array([[0, 1], [1, 1]])
        h = core_ops.propagate_rbind(sketch_of(a), sketch_of(b))
        expected = sketch_of(mops.rbind(a, b))
        # hec (column counts in single-nnz rows) adds exactly.
        np.testing.assert_array_equal(h.hec, expected.hec)

    def test_cbind_exact(self):
        a = random_sparse(10, 6, 0.3, seed=7)
        b = random_sparse(10, 4, 0.4, seed=8)
        h = core_ops.propagate_cbind(sketch_of(a), sketch_of(b))
        expected = sketch_of(mops.cbind(a, b))
        np.testing.assert_array_equal(h.hr, expected.hr)
        np.testing.assert_array_equal(h.hc, expected.hc)

    def test_rbind_shape_mismatch(self):
        with pytest.raises(ShapeError):
            core_ops.propagate_rbind(
                sketch_of(np.ones((2, 2))), sketch_of(np.ones((2, 3)))
            )

    def test_cbind_shape_mismatch(self):
        with pytest.raises(ShapeError):
            core_ops.propagate_cbind(
                sketch_of(np.ones((2, 2))), sketch_of(np.ones((3, 2)))
            )


class TestDiag:
    def test_vector_to_matrix_exact(self):
        v = as_csr(np.array([[1.0], [0.0], [2.0], [3.0]]))
        h = core_ops.propagate_diag_vector(sketch_of(v))
        expected = sketch_of(mops.diag_matrix(v))
        np.testing.assert_array_equal(h.hr, expected.hr)
        np.testing.assert_array_equal(h.hc, expected.hc)
        assert not h.fully_diagonal  # one zero on the diagonal

    def test_dense_vector_sets_diagonal_flag(self):
        v = as_csr(np.ones((5, 1)))
        h = core_ops.propagate_diag_vector(sketch_of(v))
        assert h.fully_diagonal

    def test_requires_column_vector(self):
        with pytest.raises(ShapeError):
            core_ops.propagate_diag_vector(sketch_of(np.ones((3, 2))))

    def test_matrix_to_vector_best_effort(self, rng):
        matrix = random_sparse(40, 40, 0.5, seed=9)
        h = core_ops.propagate_diag_extract(sketch_of(matrix), rng=rng)
        truth = mops.diag_extract(matrix).nnz
        assert h.shape == (40, 1)
        assert 0 <= h.total_nnz <= 40
        # Rough sanity: within a factor ~2 of the true diagonal count.
        assert abs(h.total_nnz - truth) <= max(10, truth)

    def test_matrix_to_vector_requires_square(self, rng):
        with pytest.raises(ShapeError):
            core_ops.propagate_diag_extract(sketch_of(np.ones((2, 3))), rng=rng)


class TestReshape:
    def test_concat_rows_exact_axis(self, rng):
        matrix = random_sparse(12, 5, 0.4, seed=10)
        h = core_ops.propagate_reshape(sketch_of(matrix), 4, 15, rng=rng)
        expected = sketch_of(mops.reshape_rowwise(matrix, 4, 15))
        np.testing.assert_array_equal(h.hr, expected.hr)  # exact axis
        assert h.total_nnz == matrix.nnz

    def test_split_rows_exact_axis(self, rng):
        matrix = random_sparse(4, 15, 0.4, seed=11)
        h = core_ops.propagate_reshape(sketch_of(matrix), 12, 5, rng=rng)
        expected = sketch_of(mops.reshape_rowwise(matrix, 12, 5))
        np.testing.assert_array_equal(h.hc, expected.hc)  # exact axis
        assert h.total_nnz == matrix.nnz

    def test_identity_reshape_is_shallow(self, rng):
        h = sketch_of(random_sparse(6, 8, 0.3, seed=12))
        assert core_ops.propagate_reshape(h, 6, 8, rng=rng) is h

    def test_general_reshape_preserves_total(self, rng):
        matrix = random_sparse(6, 35, 0.3, seed=13)
        h = core_ops.propagate_reshape(sketch_of(matrix), 14, 15, rng=rng)
        assert h.total_nnz == matrix.nnz

    def test_bad_cell_count(self, rng):
        with pytest.raises(ShapeError):
            core_ops.propagate_reshape(sketch_of(np.ones((2, 3))), 4, 2, rng=rng)

    def test_nlp_sentence_reshape(self, rng):
        # B3.1 pattern: (tokens x dims) -> (sentences x tokens*dims).
        matrix = mops.matmul(
            single_nnz_per_row(100, 30, seed=14),
            random_sparse(30, 8, 0.9, seed=15),
        )
        h = core_ops.propagate_reshape(sketch_of(matrix), 10, 80, rng=rng)
        assert h.total_nnz == matrix.nnz


class TestEwiseEstimates:
    def test_mult_self_estimate_bounded(self):
        # Eq 13 is a rank-1 structure model: it cannot detect that the two
        # operands are perfectly aligned, so a self-intersection estimate
        # falls between the average case and the structural upper bound.
        matrix = random_sparse(30, 30, 0.3, seed=16)
        h = sketch_of(matrix)
        estimate = core_ops.estimate_ewise_mult_nnz(h, h)
        assert 0 < estimate <= matrix.nnz

    def test_mult_zero_for_disjoint_columns(self):
        a = np.zeros((4, 6))
        a[:, :3] = 1
        b = np.zeros((4, 6))
        b[:, 3:] = 1
        estimate = core_ops.estimate_ewise_mult_nnz(sketch_of(a), sketch_of(b))
        assert estimate == 0.0

    def test_mult_with_empty_operand(self):
        a = random_sparse(5, 5, 0.5, seed=17)
        estimate = core_ops.estimate_ewise_mult_nnz(
            sketch_of(a), sketch_of(np.zeros((5, 5)))
        )
        assert estimate == 0.0

    def test_mult_column_mask_exact(self):
        # B2.5 pattern: column-structured mask on column-skewed data.
        rng = np.random.default_rng(18)
        data = (rng.random((50, 20)) < 0.4).astype(float)
        mask = np.zeros((50, 20))
        mask[:, 5:15] = 1.0
        truth = mops.ewise_mult(data, mask).nnz
        estimate = core_ops.estimate_ewise_mult_nnz(sketch_of(data), sketch_of(mask))
        assert estimate == pytest.approx(truth)

    def test_add_union_bounds(self):
        a = random_sparse(20, 20, 0.3, seed=19)
        b = random_sparse(20, 20, 0.3, seed=20)
        estimate = core_ops.estimate_ewise_add_nnz(sketch_of(a), sketch_of(b))
        assert max(a.nnz, b.nnz) <= estimate <= a.nnz + b.nnz

    def test_add_close_to_truth(self):
        a = random_sparse(100, 100, 0.1, seed=21)
        b = random_sparse(100, 100, 0.1, seed=22)
        truth = mops.ewise_add(a, b).nnz
        estimate = core_ops.estimate_ewise_add_nnz(sketch_of(a), sketch_of(b))
        assert truth / 1.1 <= estimate <= truth * 1.1

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            core_ops.estimate_ewise_mult_nnz(
                sketch_of(np.ones((2, 2))), sketch_of(np.ones((3, 3)))
            )


class TestEwisePropagation:
    def test_mult_sketch_consistent(self, rng):
        a = random_sparse(40, 40, 0.2, seed=23)
        b = random_sparse(40, 40, 0.2, seed=24)
        h = core_ops.propagate_ewise_mult(sketch_of(a), sketch_of(b), rng=rng)
        assert h.hr.sum() == h.hc.sum()
        assert h.shape == (40, 40)

    def test_mult_entries_bounded_by_minimum(self, rng):
        a = random_sparse(30, 30, 0.4, seed=25)
        b = random_sparse(30, 30, 0.4, seed=26)
        h_a, h_b = sketch_of(a), sketch_of(b)
        h = core_ops.propagate_ewise_mult(h_a, h_b, rng=rng)
        assert np.all(h.hr <= np.minimum(h_a.hr, h_b.hr))

    def test_add_total_close(self, rng):
        a = random_sparse(60, 60, 0.15, seed=27)
        b = random_sparse(60, 60, 0.15, seed=28)
        truth = mops.ewise_add(a, b).nnz
        h = core_ops.propagate_ewise_add(sketch_of(a), sketch_of(b), rng=rng)
        assert truth / 1.2 <= h.total_nnz <= truth * 1.2

    def test_add_empty_plus_x_is_x(self, rng):
        x = random_sparse(10, 10, 0.5, seed=29)
        h = core_ops.propagate_ewise_add(
            sketch_of(np.zeros((10, 10))), sketch_of(x), rng=rng
        )
        assert h.total_nnz == x.nnz
