"""Unit tests for the MetaAC / MetaWC metadata estimators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.estimators import MetaACEstimator, MetaWCEstimator
from repro.matrix.ops import matmul
from repro.matrix.random import random_sparse
from repro.opcodes import Op


@pytest.fixture
def ac():
    return MetaACEstimator()


@pytest.fixture
def wc():
    return MetaWCEstimator()


class TestMetaAC:
    def test_formula_eq1(self, ac):
        a = ac.build(random_sparse(100, 80, 0.1, seed=1))
        b = ac.build(random_sparse(80, 90, 0.2, seed=2))
        s_a, s_b = a.sparsity_estimate, b.sparsity_estimate
        expected = (1 - (1 - s_a * s_b) ** 80) * 100 * 90
        assert ac.estimate_nnz(Op.MATMUL, [a, b]) == pytest.approx(expected, rel=1e-9)

    def test_accurate_on_uniform_data(self, ac):
        mat_a = random_sparse(300, 200, 0.05, seed=3)
        mat_b = random_sparse(200, 250, 0.05, seed=4)
        truth = matmul(mat_a, mat_b).nnz
        estimate = ac.estimate_nnz(Op.MATMUL, [ac.build(mat_a), ac.build(mat_b)])
        assert truth / 1.1 <= estimate <= truth * 1.1

    def test_dense_product_saturates(self, ac):
        a = ac.build(np.ones((5, 5)))
        assert ac.estimate_nnz(Op.MATMUL, [a, a]) == pytest.approx(25.0)

    def test_ewise_formulas(self, ac):
        a = ac.build(random_sparse(50, 50, 0.2, seed=5))
        b = ac.build(random_sparse(50, 50, 0.3, seed=6))
        s_a, s_b = a.sparsity_estimate, b.sparsity_estimate
        add = ac.estimate_nnz(Op.EWISE_ADD, [a, b])
        mult = ac.estimate_nnz(Op.EWISE_MULT, [a, b])
        assert add == pytest.approx((s_a + s_b - s_a * s_b) * 2500)
        assert mult == pytest.approx(s_a * s_b * 2500)

    def test_reorganizations_exact(self, ac):
        matrix = random_sparse(20, 30, 0.2, seed=7)
        synopsis = ac.build(matrix)
        assert ac.estimate_nnz(Op.TRANSPOSE, [synopsis]) == matrix.nnz
        assert ac.estimate_nnz(Op.RESHAPE, [synopsis], rows=30, cols=20) == matrix.nnz
        assert ac.estimate_nnz(Op.NEQ_ZERO, [synopsis]) == matrix.nnz
        assert ac.estimate_nnz(Op.EQ_ZERO, [synopsis]) == 600 - matrix.nnz

    def test_binds_exact(self, ac):
        a = random_sparse(5, 10, 0.4, seed=8)
        b = random_sparse(7, 10, 0.4, seed=9)
        sa, sb = ac.build(a), ac.build(b)
        assert ac.estimate_nnz(Op.RBIND, [sa, sb]) == a.nnz + b.nnz

    def test_propagation_carries_shape(self, ac):
        a = ac.build(random_sparse(4, 6, 0.5, seed=10))
        t = ac.propagate(Op.TRANSPOSE, [a])
        assert t.shape == (6, 4)
        d = ac.propagate(Op.DIAG_V2M, [ac.build(np.ones((5, 1)))])
        assert d.shape == (5, 5)

    def test_shape_validation(self, ac):
        a = ac.build(np.ones((2, 3)))
        b = ac.build(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            ac.estimate_nnz(Op.MATMUL, [a, b])
        with pytest.raises(ShapeError):
            ac.estimate_nnz(Op.RESHAPE, [a], rows=5, cols=5)

    def test_synopsis_size_constant(self, ac):
        small = ac.build(np.ones((2, 2)))
        large = ac.build(random_sparse(1000, 1000, 0.01, seed=11))
        assert small.size_bytes() == large.size_bytes()


class TestMetaWC:
    def test_formula_eq2(self, wc):
        a = wc.build(random_sparse(100, 80, 0.1, seed=12))
        b = wc.build(random_sparse(80, 90, 0.2, seed=13))
        s_a, s_b = a.sparsity_estimate, b.sparsity_estimate
        expected = min(1.0, s_a * 80) * min(1.0, s_b * 80) * 100 * 90
        assert wc.estimate_nnz(Op.MATMUL, [a, b]) == pytest.approx(expected)

    def test_upper_bounds_truth_on_random(self, wc):
        for seed in range(4):
            mat_a = random_sparse(60, 40, 0.15, seed=20 + seed)
            mat_b = random_sparse(40, 70, 0.15, seed=30 + seed)
            truth = matmul(mat_a, mat_b).nnz
            estimate = wc.estimate_nnz(
                Op.MATMUL, [wc.build(mat_a), wc.build(mat_b)]
            )
            assert estimate >= truth * 0.999

    def test_ewise_bounds(self, wc):
        a = wc.build(random_sparse(50, 50, 0.6, seed=14))
        b = wc.build(random_sparse(50, 50, 0.7, seed=15))
        add = wc.estimate_nnz(Op.EWISE_ADD, [a, b])
        mult = wc.estimate_nnz(Op.EWISE_MULT, [a, b])
        assert add == pytest.approx(2500.0)  # saturated min(1, sA+sB)
        assert mult == pytest.approx(min(a.sparsity_estimate, b.sparsity_estimate) * 2500)

    def test_outer_product_case(self, wc):
        # B1.4: two ultra-sparse matrices with aligned dense column/row; the
        # worst case estimator correctly predicts a dense output.
        from repro.matrix.random import outer_product_pair

        column, row = outer_product_pair(64)
        estimate = wc.estimate_nnz(Op.MATMUL, [wc.build(column), wc.build(row)])
        assert estimate == pytest.approx(64.0 * 64.0)
