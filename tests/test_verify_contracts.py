"""Tests for the contract registry (repro.verify.contracts)."""

from __future__ import annotations

import pytest
import scipy.sparse as sp

from repro.estimators import available_estimators
from repro.ir import nodes as ir
from repro.matrix.random import permutation_matrix, random_sparse
from repro.verify import (
    EstimatorSpec,
    all_contracts,
    default_estimator_specs,
    generate_case,
    get_contract,
)
from repro.verify.contracts import case_supported, estimate_case
from repro.verify.generators import Case, retag


def _case_from(root) -> Case:
    return retag(Case(root=root, generator="test", seed=0, index=0))


def test_registry_contract_ids():
    ids = {contract.id for contract in all_contracts()}
    assert ids >= {
        "bounds", "determinism", "theorem31_exact", "wc_upper_bound",
        "exact_oracle", "sampling_lower_bound", "unbiased_mean",
        "dm_block_consistency", "theorem32_containment",
        "interval_containment", "propagation_consistency",
        "sketch_roundtrip",
    }


def test_every_contract_has_paper_ref_and_description():
    for contract in all_contracts():
        assert contract.description
        assert contract.paper_ref


def test_get_contract_unknown():
    with pytest.raises(ValueError):
        get_contract("no_such_contract")


def test_default_specs_cover_registry():
    specs = default_estimator_specs()
    assert [spec.name for spec in specs] == available_estimators()


def test_spec_make_and_tags():
    spec = EstimatorSpec(name="meta_wc")
    estimator = spec.make()
    assert estimator.name == "MetaWC"
    assert "upper_bound" in spec.tags


def test_spec_seed_override_changes_randomized_estimate():
    a = ir.leaf(random_sparse(30, 30, 0.2, seed=1))
    b = ir.leaf(random_sparse(30, 30, 0.2, seed=2))
    case = _case_from(a @ b)
    spec = EstimatorSpec(name="sampling_unbiased")
    one = estimate_case(spec.make(seed=1), case)
    two = estimate_case(spec.make(seed=1), case)
    assert one == two  # same seed => same draw


def test_case_supported_gates_propagation():
    # The hash estimator handles products only: a transpose over a product
    # needs transpose propagation it does not declare.
    a = ir.leaf(random_sparse(8, 8, 0.3, seed=3))
    case = _case_from(ir.transpose(a @ a))
    assert not case_supported(EstimatorSpec(name="hash").make(), case)
    assert case_supported(EstimatorSpec(name="exact").make(), case)


def test_runtime_propagation_gap_raises_unsupported():
    # The biased sampling estimator declares a matmul propagation handler
    # that refuses at runtime (single products only); the engine converts
    # that into a skip, not a violation.
    from repro.errors import UnsupportedOperationError

    a = ir.leaf(random_sparse(8, 8, 0.3, seed=3))
    case = _case_from((a @ a) @ a)
    spec = EstimatorSpec(name="sampling")
    assert case_supported(spec.make(), case)
    with pytest.raises(UnsupportedOperationError):
        estimate_case(spec.make(), case)


def test_exact_oracle_contract_passes_and_detects_drift():
    from repro.verify.engine import FaultyOracle

    contract = get_contract("exact_oracle")
    a = ir.leaf(random_sparse(6, 5, 0.4, seed=4))
    b = ir.leaf(random_sparse(5, 7, 0.4, seed=5))
    case = _case_from(a @ b)
    good = EstimatorSpec(name="exact")
    assert contract.applies(good, case)
    assert contract.check(good, case) is None
    bad = EstimatorSpec(name="faulty_exact", factory=FaultyOracle)
    assert contract.check(bad, case) is not None


def test_theorem31_applies_only_to_exactness_window():
    contract = get_contract("theorem31_exact")
    spec = EstimatorSpec(name="mnc")
    perm = ir.leaf(permutation_matrix(9, seed=6), name="P")
    x = ir.leaf(random_sparse(9, 7, 0.3, seed=7), name="X")
    exact_case = _case_from(perm @ x)
    assert contract.applies(spec, exact_case)
    assert contract.check(spec, exact_case) is None
    # Dense-times-dense is outside the theorem's exactness window.
    c = ir.leaf(sp.csr_array([[1.0, 1.0], [1.0, 1.0]]))
    dense_case = _case_from(c @ c)
    assert not contract.applies(spec, dense_case)


def test_wc_upper_bound_holds_on_diag_extract():
    contract = get_contract("wc_upper_bound")
    spec = EstimatorSpec(name="meta_wc")
    case = _case_from(ir.diag(ir.leaf(sp.csr_array(sp.eye(6)))))
    assert contract.applies(spec, case)
    assert contract.check(spec, case) is None


def test_bounds_contract_on_generated_cases():
    contract = get_contract("bounds")
    spec = EstimatorSpec(name="mnc")
    for index in range(8):
        case = generate_case("uniform", 11, index)
        if contract.applies(spec, case):
            assert contract.check(spec, case) is None


def test_sketch_roundtrip_contract():
    contract = get_contract("sketch_roundtrip")
    spec = EstimatorSpec(name="mnc")
    case = generate_case("structured", 0, 0)
    applicable = retag(Case(root=case.root, generator=case.generator,
                            seed=case.seed, index=0))
    assert contract.applies(spec, applicable)
    assert contract.check(spec, applicable) is None


def test_interval_containment_contract():
    contract = get_contract("interval_containment")
    spec = EstimatorSpec(name="mnc")
    a = ir.leaf(random_sparse(12, 10, 0.25, seed=8))
    b = ir.leaf(random_sparse(10, 9, 0.25, seed=9))
    case = _case_from(a @ b)
    assert contract.applies(spec, case)
    assert contract.check(spec, case) is None
