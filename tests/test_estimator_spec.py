"""EstimatorSpec: the unified estimator-selection value object.

Every caller-facing surface (service, serve protocol, SparsEst runner,
CLI) parses its estimator selection through ``EstimatorSpec.parse``; these
tests pin the accepted forms, the structured error taxonomy, and the shim
behavior of the deprecated call forms.
"""

import pickle
import warnings

import pytest

from repro.errors import (
    EstimatorError,
    EstimatorOptionError,
    UnknownEstimatorError,
    UnsupportedOperationError,
)
from repro.estimators import (
    AUTO_NAME,
    EstimatorSpec,
    available_estimators,
    estimator_accepts_seed,
    make_estimator,
)


class TestParse:
    def test_name_string(self):
        spec = EstimatorSpec.parse("mnc")
        assert spec.name == "mnc"
        assert spec.options == ()
        assert not spec.is_auto

    def test_none_uses_default(self):
        assert EstimatorSpec.parse(None).name == "mnc"
        assert EstimatorSpec.parse(None, default="hash").name == "hash"
        assert EstimatorSpec.parse(None, default=AUTO_NAME).is_auto

    def test_existing_spec_is_idempotent(self):
        spec = EstimatorSpec.parse("sampling")
        assert EstimatorSpec.parse(spec) == spec

    def test_wire_mapping(self):
        spec = EstimatorSpec.parse(
            {"estimator": "auto", "tolerance": 0.25, "seed": 7}
        )
        assert spec.is_auto
        assert spec.tolerance == 0.25
        assert spec.seed == 7

    def test_wire_roundtrip(self):
        spec = EstimatorSpec(name="sampling", options={"fraction": 0.2}, seed=3)
        assert EstimatorSpec.parse(spec.to_wire()) == spec

    def test_mapping_needs_exactly_one_name_key(self):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse({"name": "mnc", "estimator": "mnc"})
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse({"tolerance": 0.5})

    def test_unknown_mapping_fields_rejected(self):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse({"name": "mnc", "bogus": 1})

    def test_unknown_name_carries_available_estimators(self):
        with pytest.raises(UnknownEstimatorError) as info:
            EstimatorSpec.parse("not_an_estimator")
        assert info.value.details["available_estimators"] == available_estimators()
        # The legacy exception type keeps matching (shim compatibility).
        assert isinstance(info.value, UnsupportedOperationError)

    def test_tolerance_requires_auto(self):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse("mnc", tolerance=0.5)
        EstimatorSpec.parse(AUTO_NAME, tolerance=0.5)

    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan"), "wide"])
    def test_bad_tolerance_rejected(self, bad):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse(AUTO_NAME, tolerance=bad)

    def test_instance_rejected_with_guidance(self):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec.parse(make_estimator("mnc"))

    def test_options_normalized_and_order_insensitive(self):
        a = EstimatorSpec(name="sampling", options={"seed": 1, "fraction": 0.3})
        b = EstimatorSpec(
            name="sampling", options=(("seed", 1), ("fraction", 0.3))
        )
        assert a == b
        assert a.key == b.key

    def test_picklable_and_hashable(self):
        spec = EstimatorSpec.parse({"name": "auto", "tolerance": 0.1})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)


class TestKey:
    def test_bare_name(self):
        assert EstimatorSpec.parse("mnc").key == "mnc"

    def test_options_and_tolerance_distinguish_keys(self):
        spec = EstimatorSpec.parse({"name": "auto", "tolerance": 0.5, "seed": 2})
        assert "tolerance=0.5" in spec.key
        assert "seed=2" in spec.key
        assert spec.key != EstimatorSpec.parse({"name": "auto", "tolerance": 0.6}).key


class TestMake:
    def test_seed_injected_when_factory_accepts_it(self):
        assert estimator_accepts_seed("sampling")
        estimator = EstimatorSpec(name="sampling", seed=123).make()
        assert estimator.name

    def test_seed_skipped_when_factory_rejects_it(self):
        assert not estimator_accepts_seed("meta_ac")
        EstimatorSpec(name="meta_ac", seed=5).make()  # must not raise

    def test_explicit_seed_option_wins(self):
        spec = EstimatorSpec(name="sampling", options={"seed": 1}, seed=2)
        spec.make()  # no duplicate-kwarg crash

    def test_auto_is_routed_not_instantiated(self):
        with pytest.raises(EstimatorOptionError):
            EstimatorSpec(name=AUTO_NAME, tolerance=0.5).make()

    def test_auto_not_in_registry(self):
        # The contract fuzzer iterates the registry; "auto" must stay a
        # routing pseudo-name, not a registered estimator.
        assert AUTO_NAME not in available_estimators()


class TestMakeEstimatorErrors:
    def test_unknown_name_structured(self):
        with pytest.raises(UnknownEstimatorError) as info:
            make_estimator("not_real")
        assert "available_estimators" in info.value.details

    def test_bad_option_wrapped(self):
        with pytest.raises(EstimatorOptionError):
            make_estimator("mnc", bogus_kwarg=True)

    def test_both_are_estimator_errors(self):
        with pytest.raises(EstimatorError):
            make_estimator("not_real")
        with pytest.raises(EstimatorError):
            make_estimator("mnc", bogus_kwarg=True)


class TestRunnerShims:
    def test_estimator_options_deprecated(self):
        from repro.sparsest.runner import EstimationRequest

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EstimationRequest(
                use_case="B1.1",
                estimator="sampling",
                estimator_options=(("fraction", 0.2),),
            )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_request_tolerance_requires_auto(self):
        from repro.sparsest.runner import EstimationRequest

        with pytest.raises(EstimatorOptionError):
            EstimationRequest(use_case="B1.1", estimator="mnc", tolerance=0.2)

    def test_request_spec_inherits_seed_and_tolerance(self):
        from repro.sparsest.runner import EstimationRequest

        request = EstimationRequest(
            use_case="B1.1", estimator="auto", seed=9, tolerance=0.4
        )
        spec = request.estimator_spec()
        assert spec.is_auto
        assert spec.seed == 9
        assert spec.tolerance == 0.4

    def test_request_folds_legacy_options_into_spec(self):
        from repro.sparsest.runner import EstimationRequest

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            request = EstimationRequest(
                use_case="B1.1",
                estimator="sampling",
                estimator_options=(("fraction", 0.25),),
            )
        assert request.estimator_spec().options_dict() == {"fraction": 0.25}
