"""Property-based tests (hypothesis) for MNC sketch invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import (
    estimate_product_nnz,
    product_nnz_lower_bound,
    product_nnz_upper_bound,
)
from repro.core.sketch import MNCSketch
from repro.matrix.conversion import as_csr
from repro.matrix.ops import matmul


@st.composite
def sparse_matrices(draw, max_dim=24, min_rows=1, min_cols=1):
    """Random small sparse 0/1 matrices with arbitrary structure."""
    rows = draw(st.integers(min_rows, max_dim))
    cols = draw(st.integers(min_cols, max_dim))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    return as_csr(mask.astype(np.int8))


@st.composite
def product_pairs(draw, max_dim=20):
    """Pairs (A, B) with compatible inner dimensions."""
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    l = draw(st.integers(1, max_dim))
    density_a = draw(st.floats(0.0, 1.0))
    density_b = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = as_csr((rng.random((m, n)) < density_a).astype(np.int8))
    b = as_csr((rng.random((n, l)) < density_b).astype(np.int8))
    return a, b


class TestSketchInvariants:
    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_counts_sum_to_nnz(self, matrix):
        sketch = MNCSketch.from_matrix(matrix)
        assert sketch.hr.sum() == matrix.nnz
        assert sketch.hc.sum() == matrix.nnz
        assert sketch.total_nnz == matrix.nnz

    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_counts_bounded_by_dimensions(self, matrix):
        sketch = MNCSketch.from_matrix(matrix)
        m, n = matrix.shape
        assert np.all(sketch.hr <= n)
        assert np.all(sketch.hc <= m)

    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_extensions_bounded_by_counts(self, matrix):
        sketch = MNCSketch.from_matrix(matrix)
        if sketch.her is not None:
            assert np.all(sketch.her <= sketch.hr)
            assert np.all(sketch.her >= 0)
        if sketch.hec is not None:
            assert np.all(sketch.hec <= sketch.hc)
            assert np.all(sketch.hec >= 0)

    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_extension_totals_agree(self, matrix):
        # sum(her) and sum(hec) both count structurally defined subsets;
        # her total = non-zeros in single-nnz columns = number of single
        # columns; hec total = number of single rows.
        sketch = MNCSketch.from_matrix(matrix)
        if sketch.her is not None:
            assert sketch.her.sum() == sketch.cols_single
        if sketch.hec is not None:
            assert sketch.hec.sum() == sketch.rows_single

    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_summary_statistics_consistent(self, matrix):
        sketch = MNCSketch.from_matrix(matrix)
        assert sketch.nnz_rows == int((sketch.hr > 0).sum())
        assert sketch.nnz_cols == int((sketch.hc > 0).sum())
        assert sketch.rows_single <= sketch.nnz_rows
        assert sketch.cols_single <= sketch.nnz_cols
        assert 0.0 <= sketch.sparsity <= 1.0

    @given(sparse_matrices())
    @settings(max_examples=50, deadline=None)
    def test_transpose_duality(self, matrix):
        from repro.core.ops import propagate_transpose

        sketch = MNCSketch.from_matrix(matrix)
        direct = MNCSketch.from_matrix(as_csr(matrix.transpose()))
        derived = propagate_transpose(sketch)
        np.testing.assert_array_equal(derived.hr, direct.hr)
        np.testing.assert_array_equal(derived.hc, direct.hc)


class TestEstimateInvariants:
    @given(product_pairs())
    @settings(max_examples=80, deadline=None)
    def test_estimate_within_theorem32_bounds(self, pair):
        a, b = pair
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        estimate = estimate_product_nnz(h_a, h_b)
        assert estimate >= product_nnz_lower_bound(h_a, h_b) - 1e-9
        assert estimate <= product_nnz_upper_bound(h_a, h_b) + 1e-9

    @given(product_pairs())
    @settings(max_examples=80, deadline=None)
    def test_true_nnz_within_theorem32_bounds(self, pair):
        a, b = pair
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        truth = matmul(a, b).nnz
        assert product_nnz_lower_bound(h_a, h_b) <= truth
        assert truth <= product_nnz_upper_bound(h_a, h_b)

    @given(product_pairs())
    @settings(max_examples=80, deadline=None)
    def test_theorem31_exactness(self, pair):
        a, b = pair
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        if h_a.max_hr <= 1 or h_b.max_hc <= 1:
            truth = matmul(a, b).nnz
            assert estimate_product_nnz(h_a, h_b) == truth

    @given(product_pairs())
    @settings(max_examples=80, deadline=None)
    def test_estimate_physical_range(self, pair):
        a, b = pair
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        estimate = estimate_product_nnz(h_a, h_b)
        assert 0.0 <= estimate <= a.shape[0] * b.shape[1]

    @given(product_pairs())
    @settings(max_examples=50, deadline=None)
    def test_basic_variant_also_in_physical_range(self, pair):
        a, b = pair
        h_a = MNCSketch.from_matrix(a, with_extensions=False)
        h_b = MNCSketch.from_matrix(b, with_extensions=False)
        estimate = estimate_product_nnz(
            h_a, h_b, use_extensions=False, use_bounds=False
        )
        assert 0.0 <= estimate <= a.shape[0] * b.shape[1]
