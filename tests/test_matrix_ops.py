"""Unit tests for the ground-truth structural operations."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.errors import ShapeError
from repro.matrix.conversion import as_csr
from repro.matrix.ops import (
    boolean_matmul,
    cbind,
    diag_extract,
    diag_matrix,
    equals_zero,
    ewise_add,
    ewise_mult,
    matmul,
    not_equals_zero,
    rbind,
    reshape_rowwise,
    transpose,
)
from repro.matrix.random import random_sparse


class TestMatmul:
    def test_matches_numpy_boolean_product(self):
        rng = np.random.default_rng(5)
        a = (rng.random((12, 9)) < 0.3).astype(float)
        b = (rng.random((9, 14)) < 0.3).astype(float)
        expected = (a @ b) != 0
        result = matmul(a, b)
        np.testing.assert_array_equal(result.toarray() != 0, expected)

    def test_no_cancellation(self):
        # +1 and -1 would cancel numerically; structurally they must not.
        a = np.array([[1.0, -1.0]])
        b = np.array([[1.0], [1.0]])
        assert matmul(a, b).nnz == 1

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_identity(self):
        x = random_sparse(20, 15, 0.2, seed=1)
        assert_structure_equal(matmul(np.eye(20), x), x)

    def test_empty_operand(self):
        result = matmul(np.zeros((3, 4)), np.ones((4, 2)))
        assert result.nnz == 0

    def test_alias(self):
        a = random_sparse(5, 6, 0.4, seed=2)
        b = random_sparse(6, 7, 0.4, seed=3)
        assert_structure_equal(matmul(a, b), boolean_matmul(a, b))


class TestEwise:
    def test_add_is_union(self):
        a = np.array([[1, 0], [0, 1]])
        b = np.array([[1, 1], [0, 0]])
        assert_structure_equal(ewise_add(a, b), np.array([[1, 1], [0, 1]]))

    def test_add_no_cancellation(self):
        a = np.array([[2.0]])
        b = np.array([[-2.0]])
        assert ewise_add(a, b).nnz == 1

    def test_mult_is_intersection(self):
        a = np.array([[1, 0], [1, 1]])
        b = np.array([[1, 1], [0, 1]])
        assert_structure_equal(ewise_mult(a, b), np.array([[1, 0], [0, 1]]))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ewise_add(np.ones((2, 2)), np.ones((3, 2)))
        with pytest.raises(ShapeError):
            ewise_mult(np.ones((2, 2)), np.ones((2, 3)))

    def test_add_commutative(self):
        a = random_sparse(10, 10, 0.3, seed=4)
        b = random_sparse(10, 10, 0.3, seed=5)
        assert_structure_equal(ewise_add(a, b), ewise_add(b, a))


class TestTranspose:
    def test_structure(self):
        a = np.array([[1, 0, 2], [0, 3, 0]])
        assert_structure_equal(transpose(a), a.T)

    def test_involution(self):
        a = random_sparse(8, 13, 0.2, seed=6)
        assert_structure_equal(transpose(transpose(a)), a)


class TestReshape:
    def test_row_major_semantics(self):
        a = np.arange(12.0).reshape(3, 4)
        a[a % 3 == 0] = 0
        assert_structure_equal(reshape_rowwise(a, 4, 3), a.reshape(4, 3))

    def test_preserves_nnz(self):
        a = random_sparse(10, 6, 0.3, seed=7)
        assert reshape_rowwise(a, 5, 12).nnz == a.nnz

    def test_identity_reshape(self):
        a = random_sparse(4, 6, 0.5, seed=8)
        assert_structure_equal(reshape_rowwise(a, 4, 6), a)

    def test_bad_cell_count(self):
        with pytest.raises(ShapeError):
            reshape_rowwise(np.ones((2, 3)), 4, 2)


class TestDiag:
    def test_vector_to_matrix(self):
        v = np.array([[1.0], [0.0], [2.0]])
        expected = np.diag([1.0, 0.0, 2.0])
        assert_structure_equal(diag_matrix(v), expected)

    def test_vector_to_matrix_requires_column(self):
        with pytest.raises(ShapeError):
            diag_matrix(np.ones((2, 2)))

    def test_matrix_to_vector(self):
        a = np.array([[1, 2], [0, 0]])
        result = diag_extract(a)
        assert result.shape == (2, 1)
        assert result.nnz == 1

    def test_matrix_to_vector_requires_square(self):
        with pytest.raises(ShapeError):
            diag_extract(np.ones((2, 3)))

    def test_roundtrip(self):
        v = as_csr(np.array([[1.0], [0.0], [3.0]]))
        assert_structure_equal(diag_extract(diag_matrix(v)), v)


class TestBind:
    def test_rbind(self):
        a = np.array([[1, 0]])
        b = np.array([[0, 2], [3, 0]])
        assert_structure_equal(rbind(a, b), np.array([[1, 0], [0, 2], [3, 0]]))

    def test_cbind(self):
        a = np.array([[1], [0]])
        b = np.array([[0, 2], [3, 0]])
        assert_structure_equal(cbind(a, b), np.array([[1, 0, 2], [0, 3, 0]]))

    def test_rbind_shape_mismatch(self):
        with pytest.raises(ShapeError):
            rbind(np.ones((2, 2)), np.ones((2, 3)))

    def test_cbind_shape_mismatch(self):
        with pytest.raises(ShapeError):
            cbind(np.ones((2, 2)), np.ones((3, 2)))

    def test_nnz_additivity(self):
        a = random_sparse(5, 8, 0.3, seed=9)
        b = random_sparse(7, 8, 0.3, seed=10)
        assert rbind(a, b).nnz == a.nnz + b.nnz


class TestIndicators:
    def test_neq_zero(self):
        a = np.array([[0.0, -5.0], [3.0, 0.0]])
        assert_structure_equal(not_equals_zero(a), np.array([[0, 1], [1, 0]]))

    def test_eq_zero_complement(self):
        a = np.array([[0.0, 1.0], [2.0, 0.0]])
        result = equals_zero(a)
        assert_structure_equal(result, np.array([[1, 0], [0, 1]]))

    def test_complement_partition(self):
        a = random_sparse(6, 9, 0.4, seed=11)
        assert not_equals_zero(a).nnz + equals_zero(a).nnz == 6 * 9

    def test_eq_zero_of_empty_is_full(self):
        assert equals_zero(np.zeros((3, 3))).nnz == 9
