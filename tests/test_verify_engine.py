"""Tests for the fuzz engine and shrinker (repro.verify.engine)."""

from __future__ import annotations

import pytest

from repro.verify import (
    EstimatorSpec,
    FuzzEngine,
    get_contract,
    injected_fault_selftest,
)
from repro.verify.engine import CellKey, FaultyOracle


def test_small_clean_run():
    engine = FuzzEngine(
        specs=[EstimatorSpec(name="exact"), EstimatorSpec(name="mnc")],
        generators=["uniform"],
        budget=8,
        seed=0,
    )
    report = engine.run()
    assert report.violations == []
    assert report.checked > 0


def test_runs_are_deterministic():
    def snapshot():
        report = FuzzEngine(
            specs=[EstimatorSpec(name="mnc"), EstimatorSpec(name="meta_wc")],
            generators=["uniform", "adversarial"],
            budget=6,
            seed=5,
        ).run()
        return (report.checked, report.skipped,
                sorted(str(k) for k in report.cells))

    assert snapshot() == snapshot()


def test_cell_patterns_select_subset():
    engine = FuzzEngine(
        generators=["uniform"],
        budget=2,
        cell_patterns=["mnc:bounds:*"],
    )
    report = engine.run()
    assert set(report.cells) == {CellKey("mnc", "bounds", "uniform")}


def test_injected_fault_is_found_and_shrunk():
    record = injected_fault_selftest()
    m, n = record.shrunk.root.shape
    assert m <= 8 and n <= 8
    assert record.shrink_steps > 0
    assert "estimate" in record.shrunk_message


def test_shrunk_case_still_violates():
    record = injected_fault_selftest()
    contract = get_contract("exact_oracle")
    spec = EstimatorSpec(name="faulty_exact", factory=FaultyOracle)
    assert contract.applies(spec, record.shrunk)
    assert contract.check(spec, record.shrunk) is not None


def test_report_summary_rows_aggregate_generators():
    engine = FuzzEngine(
        specs=[EstimatorSpec(name="exact")],
        contracts=[get_contract("bounds")],
        generators=["uniform", "structured"],
        budget=3,
    )
    report = engine.run()
    rows = report.summary_rows()
    assert len(rows) == 1
    estimator, contract, checked, skipped, bad = rows[0]
    assert (estimator, contract, bad) == ("exact", "bounds", 0)
    assert checked == report.checked


def test_no_shrink_mode_reports_original_case():
    engine = FuzzEngine(
        specs=[EstimatorSpec(name="faulty_exact", factory=FaultyOracle)],
        contracts=[get_contract("exact_oracle")],
        generators=["uniform"],
        budget=6,
        shrink=False,
    )
    report = engine.run()
    assert report.violations
    for violation in report.violations:
        assert violation.shrink_steps == 0
        assert violation.shrunk is violation.case


def test_engine_counts_flow_through_observability():
    from repro.observability import RecordingCollector, using_collector

    collector = RecordingCollector()
    with using_collector(collector):
        FuzzEngine(
            specs=[EstimatorSpec(name="exact")],
            contracts=[get_contract("bounds")],
            generators=["uniform"],
            budget=2,
        ).run()
    assert collector.counters.get("verify.cases", 0) > 0
    assert "verify.violations" in collector.counters


@pytest.mark.fuzz
def test_full_matrix_small_budget_is_clean():
    """The full (estimator x contract x generator) matrix, small budget.

    This is the CI fuzz job's in-process mirror of
    ``python -m repro verify --budget 25 --seed 0``.
    """
    report = FuzzEngine(budget=25, seed=0).run()
    messages = [v.describe() for v in report.violations]
    assert not messages, "\n".join(messages)
