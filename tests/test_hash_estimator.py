"""Unit tests for the hash/KMV estimator (Appendix A, reference [5])."""

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators.hashing import HashEstimator, _mix64
from repro.matrix import ops as mops
from repro.matrix.random import outer_product_pair, random_sparse
from repro.opcodes import Op


class TestMixer:
    def test_uniform_range(self):
        values = _mix64(np.arange(10_000, dtype=np.int64), salt=123)
        assert values.min() >= 0.0
        assert values.max() < 1.0
        assert 0.45 < values.mean() < 0.55

    def test_deterministic(self):
        a = _mix64(np.arange(100, dtype=np.int64), salt=5)
        b = _mix64(np.arange(100, dtype=np.int64), salt=5)
        np.testing.assert_array_equal(a, b)

    def test_salt_changes_hash(self):
        a = _mix64(np.arange(100, dtype=np.int64), salt=5)
        b = _mix64(np.arange(100, dtype=np.int64), salt=6)
        assert not np.array_equal(a, b)


class TestHashEstimator:
    def test_accurate_on_uniform_data(self):
        estimator = HashEstimator(buffer_size=512, fraction=0.3, seed=1)
        a = random_sparse(300, 200, 0.05, seed=2)
        b = random_sparse(200, 250, 0.05, seed=3)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 1.4 <= estimate <= truth * 1.4

    def test_full_fraction_small_product_exact(self):
        # With f = 1 and few distinct pairs, the estimator counts exactly.
        estimator = HashEstimator(buffer_size=4096, fraction=1.0, seed=4)
        a = random_sparse(30, 20, 0.2, seed=5)
        b = random_sparse(20, 30, 0.2, seed=6)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == pytest.approx(truth)

    def test_kmv_path_reasonable(self):
        # Force the KMV path with a tiny buffer.
        estimator = HashEstimator(buffer_size=64, fraction=1.0, seed=7)
        a = random_sparse(120, 100, 0.1, seed=8)
        b = random_sparse(100, 120, 0.1, seed=9)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 1.6 <= estimate <= truth * 1.6

    def test_outer_product_case_exact(self):
        # Table 4: the hash estimator handles B1.4 exactly — the one dense
        # outer product's pairs all collapse to distinct sampled identities.
        column, row = outer_product_pair(48)
        estimator = HashEstimator(buffer_size=4096, fraction=1.0, seed=10)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(column), estimator.build(row)]
        )
        assert estimate == pytest.approx(48.0 * 48.0)

    def test_empty_product(self):
        estimator = HashEstimator(seed=11)
        a = estimator.build(np.zeros((5, 4)))
        b = estimator.build(np.ones((4, 3)))
        assert estimator.estimate_nnz(Op.MATMUL, [a, b]) == 0.0

    def test_adaptive_fraction_bounds_work(self):
        # max_pairs tiny -> fraction shrinks, estimate still in the ballpark.
        estimator = HashEstimator(buffer_size=256, fraction=1.0, max_pairs=2000, seed=12)
        a = random_sparse(150, 100, 0.15, seed=13)
        b = random_sparse(100, 150, 0.15, seed=14)
        truth = mops.matmul(a, b).nnz
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert truth / 3 <= estimate <= truth * 3

    def test_no_chain_support(self):
        estimator = HashEstimator(seed=15)
        synopsis = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.propagate(Op.MATMUL, [synopsis, synopsis])

    def test_no_elementwise_support(self):
        estimator = HashEstimator(seed=16)
        synopsis = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.estimate_nnz(Op.EWISE_MULT, [synopsis, synopsis])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HashEstimator(buffer_size=1)
        with pytest.raises(ValueError):
            HashEstimator(fraction=0.0)

    def test_synopsis_size_is_buffer(self):
        estimator = HashEstimator(buffer_size=100, seed=17)
        synopsis = estimator.build(random_sparse(50, 50, 0.2, seed=18))
        assert synopsis.size_bytes() == 100 * 8


class TestStreamingReference:
    """The properties that make Hash the streaming reference estimator."""

    def test_tagged_streaming(self):
        assert "streaming" in HashEstimator.contract_tags

    def test_registered_spec_exposes_streaming_tag(self):
        from repro.estimators.base import available_estimators, make_estimator

        assert "hash" in available_estimators()
        assert "streaming" in make_estimator("hash").contract_tags

    def test_estimate_ignores_build_order(self):
        # The streaming guarantee: a matrix that grew through deltas and
        # the same structure built from scratch estimate bit-identically,
        # because hashing depends only on (row, col) identities and salts.
        from repro.core.incremental import (
            AppendRows,
            BlockUpdate,
            DeleteCols,
            IncrementalSketch,
            apply_update,
        )

        base = random_sparse(60, 40, 0.1, seed=19)
        incremental = IncrementalSketch(base)
        rng = np.random.default_rng(20)
        apply_update(
            incremental,
            AppendRows([np.flatnonzero(rng.random(40) < 0.15) for _ in range(5)]),
        )
        apply_update(incremental, DeleteCols([1, 7, 33]))
        apply_update(
            incremental, BlockUpdate(10, 4, (rng.random((6, 8)) < 0.3))
        )
        streamed = incremental.to_matrix()
        rebuilt = streamed.copy()

        estimator = HashEstimator(buffer_size=512, fraction=0.5, seed=21)
        other = random_sparse(streamed.shape[1], 50, 0.1, seed=22)
        via_streamed = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(streamed), estimator.build(other)]
        )
        via_rebuilt = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(rebuilt), estimator.build(other)]
        )
        assert via_streamed == via_rebuilt

    def test_tracks_truth_across_deltas(self):
        # Used as the independent cross-check in docs/STREAMING.md: after
        # every delta the hash estimate stays in the ballpark of the true
        # product size with no repair step.
        from repro.core.incremental import (
            AppendRows,
            DeleteRows,
            IncrementalSketch,
            apply_update,
        )

        incremental = IncrementalSketch(random_sparse(200, 150, 0.08, seed=23))
        other = random_sparse(150, 180, 0.08, seed=24)
        estimator = HashEstimator(buffer_size=1024, fraction=0.6, seed=25)
        rng = np.random.default_rng(26)
        deltas = [
            AppendRows([np.flatnonzero(rng.random(150) < 0.1) for _ in range(8)]),
            DeleteRows(list(range(0, 40, 5))),
            AppendRows([np.flatnonzero(rng.random(150) < 0.1) for _ in range(4)]),
        ]
        for delta in deltas:
            apply_update(incremental, delta)
            current = incremental.to_matrix()
            truth = mops.matmul(current, other).nnz
            estimate = estimator.estimate_nnz(
                Op.MATMUL, [estimator.build(current), estimator.build(other)]
            )
            assert truth / 1.6 <= estimate <= truth * 1.6
