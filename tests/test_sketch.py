"""Unit tests for the MNC sketch data structure and construction."""

import numpy as np
import pytest

from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.matrix.conversion import as_csr
from repro.matrix.random import (
    diagonal_matrix,
    permutation_matrix,
    random_sparse,
    single_nnz_per_row,
)


class TestConstruction:
    def test_counts_match_matrix(self):
        matrix = as_csr(np.array([[1, 0, 2], [0, 0, 0], [3, 4, 5]]))
        sketch = MNCSketch.from_matrix(matrix)
        np.testing.assert_array_equal(sketch.hr, [2, 0, 3])
        np.testing.assert_array_equal(sketch.hc, [2, 1, 2])
        assert sketch.total_nnz == 5

    def test_shape_and_cells(self):
        sketch = MNCSketch.from_matrix(np.zeros((4, 7)))
        assert sketch.shape == (4, 7)
        assert sketch.nrows == 4
        assert sketch.ncols == 7
        assert sketch.cells == 28

    def test_sparsity(self):
        sketch = MNCSketch.from_matrix(np.eye(4))
        assert sketch.sparsity == 0.25

    def test_summary_statistics(self):
        matrix = np.array([
            [1, 1, 1, 0],  # 3 of 4 > n/2 -> half-full row
            [1, 0, 0, 0],
            [0, 0, 0, 0],
        ])
        sketch = MNCSketch.from_matrix(matrix)
        assert sketch.max_hr == 3
        assert sketch.max_hc == 2
        assert sketch.nnz_rows == 2
        assert sketch.nnz_cols == 3
        assert sketch.rows_half_full == 1
        assert sketch.rows_single == 1
        assert sketch.cols_single == 2

    def test_extension_vectors_built_when_informative(self):
        # Row 0 has two non-zeros, so extensions carry information.
        matrix = np.array([[1, 1, 0], [0, 0, 1]])
        sketch = MNCSketch.from_matrix(matrix)
        assert sketch.her is not None
        assert sketch.hec is not None

    def test_extension_vectors_skipped_when_trivial(self):
        # All rows and columns hold at most one non-zero: Theorem 3.1 is
        # already exact and extensions are omitted.
        sketch = MNCSketch.from_matrix(np.eye(5))
        assert sketch.her is None
        assert sketch.hec is None

    def test_extension_semantics(self):
        # her[i] counts row i's non-zeros lying in single-non-zero columns.
        matrix = np.array([
            [1, 1, 0],
            [1, 0, 0],
            [0, 0, 1],
        ])
        sketch = MNCSketch.from_matrix(matrix)
        # Column 1 (1 nnz) and column 2 (1 nnz) are single; column 0 has 2.
        np.testing.assert_array_equal(sketch.her, [1, 0, 1])
        # hec[j] counts column j's non-zeros in single-non-zero rows:
        # rows 1 and 2 are single.
        np.testing.assert_array_equal(sketch.hec, [1, 0, 1])

    def test_without_extensions_flag(self):
        matrix = np.array([[1, 1], [1, 0]])
        sketch = MNCSketch.from_matrix(matrix, with_extensions=False)
        assert not sketch.has_extensions

    def test_without_extensions_view(self):
        matrix = np.array([[1, 1], [1, 0]])
        sketch = MNCSketch.from_matrix(matrix)
        basic = sketch.without_extensions()
        assert not basic.has_extensions
        np.testing.assert_array_equal(basic.hr, sketch.hr)
        # Already-basic sketches pass through unchanged.
        assert basic.without_extensions() is basic

    def test_diagonal_flag(self):
        assert MNCSketch.from_matrix(diagonal_matrix(6, seed=1)).fully_diagonal
        assert not MNCSketch.from_matrix(np.diag([1.0, 0.0, 2.0])).fully_diagonal
        assert not MNCSketch.from_matrix(permutation_matrix(6, seed=2)).fully_diagonal

    def test_empty_matrix(self):
        sketch = MNCSketch.from_matrix(np.zeros((3, 4)))
        assert sketch.total_nnz == 0
        assert sketch.max_hr == 0
        assert sketch.sparsity == 0.0

    def test_zero_dimension(self):
        sketch = MNCSketch.from_matrix(np.zeros((0, 4)))
        assert sketch.total_nnz == 0
        assert sketch.sparsity == 0.0


class TestValidation:
    def test_inconsistent_totals_rejected(self):
        with pytest.raises(SketchError):
            MNCSketch(shape=(2, 2), hr=np.array([1, 0]), hc=np.array([1, 1]))

    def test_wrong_hr_length_rejected(self):
        with pytest.raises(SketchError):
            MNCSketch(shape=(2, 2), hr=np.array([1]), hc=np.array([1, 0]))

    def test_counts_above_dimension_rejected(self):
        with pytest.raises(SketchError):
            MNCSketch(shape=(2, 2), hr=np.array([3, 0]), hc=np.array([2, 1]))

    def test_negative_counts_rejected(self):
        with pytest.raises(SketchError):
            MNCSketch(shape=(2, 2), hr=np.array([-1, 2]), hc=np.array([1, 0]))

    def test_extension_exceeding_counts_rejected(self):
        with pytest.raises(SketchError):
            MNCSketch(
                shape=(2, 2),
                hr=np.array([1, 1]),
                hc=np.array([1, 1]),
                her=np.array([2, 0]),
            )

    def test_extension_or_zeros_helpers(self):
        sketch = MNCSketch.from_matrix(np.eye(3))
        np.testing.assert_array_equal(sketch.her_or_zeros(), np.zeros(3))
        np.testing.assert_array_equal(sketch.hec_or_zeros(), np.zeros(3))


class TestSizeAccounting:
    def test_size_linear_in_dimensions(self):
        small = MNCSketch.from_matrix(random_sparse(100, 100, 0.1, seed=3))
        large = MNCSketch.from_matrix(random_sparse(1000, 1000, 0.1, seed=4))
        assert large.size_bytes() > small.size_bytes()
        assert large.size_bytes() <= 4 * 1000 * 8 + 100  # four int64 vectors

    def test_permutation_sketch_smaller(self):
        # max(hr) = max(hc) = 1: no extensions -> only two count vectors.
        sketch = MNCSketch.from_matrix(permutation_matrix(500, seed=5))
        assert not sketch.has_extensions
        assert sketch.size_bytes() <= (500 + 500) * 8 + 100

    def test_single_nnz_rows_still_build_extensions_for_skewed_columns(self):
        # max(hr) = 1 but columns collide, so extensions are constructed.
        sketch = MNCSketch.from_matrix(single_nnz_per_row(500, 10, seed=6))
        assert sketch.max_hr == 1
        assert sketch.max_hc > 1
        assert sketch.has_extensions


class TestSyntheticSketch:
    def test_totals_match_target(self):
        rng = np.random.default_rng(1)
        sketch = MNCSketch.synthetic(500, 400, 0.05, rng)
        assert sketch.total_nnz == round(0.05 * 500 * 400)
        assert sketch.shape == (500, 400)
        assert not sketch.exact

    def test_counts_respect_caps(self):
        rng = np.random.default_rng(2)
        sketch = MNCSketch.synthetic(50, 10, 0.95, rng)
        assert sketch.hr.max() <= 10
        assert sketch.hc.max() <= 50
        assert sketch.hr.sum() == sketch.hc.sum()

    def test_fully_dense(self):
        rng = np.random.default_rng(3)
        sketch = MNCSketch.synthetic(20, 30, 1.0, rng)
        assert np.all(sketch.hr == 30)
        assert np.all(sketch.hc == 20)

    def test_empty(self):
        rng = np.random.default_rng(4)
        sketch = MNCSketch.synthetic(20, 30, 0.0, rng)
        assert sketch.total_nnz == 0

    def test_single_row_matrix(self):
        rng = np.random.default_rng(5)
        sketch = MNCSketch.synthetic(1, 100, 0.5, rng)
        assert sketch.hr[0] == 50

    def test_invalid_sparsity(self):
        with pytest.raises(SketchError):
            MNCSketch.synthetic(5, 5, 1.5, np.random.default_rng(6))

    def test_estimates_close_to_real_uniform_matrix(self):
        # A synthetic sketch should estimate products like a sketch of a
        # real uniform matrix of the same sparsity.
        from repro.core.estimate import estimate_product_nnz

        rng = np.random.default_rng(7)
        synthetic_a = MNCSketch.synthetic(300, 200, 0.05, rng)
        synthetic_b = MNCSketch.synthetic(200, 250, 0.05, rng)
        real_a = MNCSketch.from_matrix(random_sparse(300, 200, 0.05, seed=8))
        real_b = MNCSketch.from_matrix(random_sparse(200, 250, 0.05, seed=9))
        synthetic_estimate = estimate_product_nnz(synthetic_a, synthetic_b)
        real_estimate = estimate_product_nnz(real_a, real_b)
        assert synthetic_estimate == pytest.approx(real_estimate, rel=0.15)
