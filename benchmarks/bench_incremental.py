"""Streaming-update benchmark: patching an MNC sketch vs rebuilding it.

The streaming path (docs/STREAMING.md) claims that ingesting a delta into
an :class:`~repro.core.incremental.IncrementalSketch` and materializing
the repaired sketch is far cheaper than the non-incremental alternative —
rescanning the mutated matrix with ``MNCSketch.from_matrix``. This module
measures that claim on the canonical streaming workload: a burst of
``BURST`` successive deltas, each appending 1% of the current row count
(the ISSUE's "1% delta"), with an exact sketch materialized after every
delta. The patch number is the per-delta average over the burst, so the
lazy-hygiene debt (pending cell batches, dirty extension entries) that
accumulates between compactions is priced in rather than hidden.

The rebuild number deliberately excludes assembling the mutated matrix:
it times only ``from_matrix`` on the final (largest) structure, i.e. the
cheapest single rebuild a non-incremental system could possibly pay per
delta. The asserted ``MIN_SPEEDUP`` therefore under-states the real
advantage.

Results land in ``benchmarks/results/BENCH_incremental.json``. A delete
burst (1% of rows per delta) is measured and reported alongside, but only
the append speedup is asserted — deletes must walk the deleted rows'
structures, so their patch cost scales with adjacency, not delta count.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_incremental.py``)
or under pytest (the CI ``streaming`` job runs it and uploads the JSON).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_scale, write_bench_json
from repro.core.incremental import (
    AppendRows,
    DeleteRows,
    IncrementalSketch,
    apply_update,
)
from repro.core.sketch import MNCSketch
from repro.matrix.random import random_sparse

#: Patch-vs-rebuild target on 1%-of-rows deltas (the ISSUE's acceptance
#: criterion). Measured headroom is several times this; the floor keeps
#: the assertion robust on slow CI runners.
MIN_SPEEDUP = 10.0

#: Deltas per measured burst.
BURST = 20

#: Fraction of the current row count touched by each delta.
DELTA_FRACTION = 0.01

DENSITY = 0.005


def _dims(scale: float) -> tuple[int, int]:
    m = max(20_000, int(round(200_000 * scale)))
    n = max(5_000, int(round(40_000 * scale)))
    return m, n


def _append_burst(m: int, n: int, rng: np.random.Generator) -> list[AppendRows]:
    deltas = []
    rows = m
    for _ in range(BURST):
        batch = max(1, int(rows * DELTA_FRACTION))
        deltas.append(AppendRows([
            np.flatnonzero(rng.random(n) < DENSITY) for _ in range(batch)
        ]))
        rows += batch
    return deltas


def _delete_burst(m: int, rng: np.random.Generator) -> list[DeleteRows]:
    deltas = []
    rows = m
    for _ in range(BURST):
        batch = max(1, int(rows * DELTA_FRACTION))
        deltas.append(DeleteRows(
            np.sort(rng.choice(rows, size=batch, replace=False))
        ))
        rows -= batch
    return deltas


def _time_burst(base, deltas) -> tuple[float, IncrementalSketch]:
    """Average seconds per (apply_update + exact sketch) cycle."""
    incremental = IncrementalSketch(base)
    start = time.perf_counter()
    for delta in deltas:
        apply_update(incremental, delta)
        incremental.sketch()
    return (time.perf_counter() - start) / len(deltas), incremental


def _time_rebuild(matrix, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        MNCSketch.from_matrix(matrix)
        best = min(best, time.perf_counter() - start)
    return best


def run_incremental_benchmark(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    m, n = _dims(scale)
    base = random_sparse(m, n, DENSITY, seed=7)
    rng = np.random.default_rng(42)

    kinds: dict[str, dict] = {}
    for kind, deltas in (
        ("append_rows", _append_burst(m, n, rng)),
        ("delete_rows", _delete_burst(m, rng)),
    ):
        patch_seconds, incremental = _time_burst(base, deltas)
        mutated = incremental.to_matrix()
        # The patched sketch must stay bit-identical to the rebuild —
        # a benchmark that drifted from the verified contract would be
        # measuring a different data structure.
        patched = incremental.sketch()
        rebuilt = MNCSketch.from_matrix(mutated)
        assert np.array_equal(patched.hr, rebuilt.hr)
        assert np.array_equal(patched.hc, rebuilt.hc)
        rebuild_seconds = _time_rebuild(mutated)
        kinds[kind] = {
            "patch_seconds_per_delta": patch_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": rebuild_seconds / patch_seconds,
            "final_shape": list(mutated.shape),
            "final_nnz": int(mutated.nnz),
            "compactions": incremental.stats()["compactions"],
        }

    return {
        "scale": scale,
        "dims": {"rows": m, "cols": n, "density": DENSITY},
        "burst": BURST,
        "delta_fraction": DELTA_FRACTION,
        "min_speedup": MIN_SPEEDUP,
        "kinds": kinds,
    }


def _render(payload: dict) -> str:
    dims = payload["dims"]
    lines = [
        "incremental sketch maintenance "
        f"(scale={payload['scale']:g}, {dims['rows']}x{dims['cols']} "
        f"d={dims['density']:g}, burst of {payload['burst']} x "
        f"{payload['delta_fraction']:.0%} deltas)",
        f"{'delta kind':<16}{'patch ms':>12}{'rebuild ms':>12}{'speedup':>10}",
    ]
    for kind, result in payload["kinds"].items():
        lines.append(
            f"{kind:<16}"
            f"{result['patch_seconds_per_delta'] * 1e3:>12.2f}"
            f"{result['rebuild_seconds'] * 1e3:>12.2f}"
            f"{result['speedup']:>9.1f}x"
        )
    return "\n".join(lines)


def _enforce(payload: dict) -> None:
    achieved = payload["kinds"]["append_rows"]["speedup"]
    assert achieved >= payload["min_speedup"], (
        f"append_rows patch speedup {achieved:.1f}x is below the "
        f"{payload['min_speedup']:.0f}x acceptance floor"
    )


def test_incremental_benchmark():
    payload = run_incremental_benchmark()
    write_bench_json("incremental", payload)
    print(_render(payload))
    _enforce(payload)


if __name__ == "__main__":
    result = run_incremental_benchmark()
    write_bench_json("incremental", result)
    print(_render(result))
    _enforce(result)
