"""Chain-rewrite benefit on IR expressions (Appendix C as a rewrite).

Measures the true sparse cost of left-deep chains before and after
:func:`repro.optimizer.rewrite.rewrite_chains`, across several sparsity
profiles, plus the rewrite's own compile-time cost.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.ir import evaluate, leaf, matmul
from repro.matrix.properties import col_nnz, row_nnz
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.optimizer import rewrite_chains
from repro.sparsest.report import simple_table

N = 200

PROFILES = {
    "ultra-sparse head": [0.002, 0.6, 0.6, 0.6, 0.6],
    "ultra-sparse middle": [0.6, 0.5, 0.003, 0.5, 0.6],
    "ultra-sparse tail": [0.6, 0.6, 0.6, 0.6, 0.002],
    "uniform": [0.3, 0.3, 0.3, 0.3, 0.3],
}


def _chain(sparsities, seed):
    rng = np.random.default_rng(seed)
    nodes = [
        leaf(random_sparse(N, N, s, seed=rng), name=f"M{i}")
        for i, s in enumerate(sparsities)
    ]
    root = nodes[0]
    for node in nodes[1:]:
        root = matmul(root, node)
    return root


def _true_cost(root):
    total = 0.0

    def walk(node):
        nonlocal total
        structure = evaluate(node)
        if node.op is Op.MATMUL:
            left = walk(node.inputs[0])
            right = walk(node.inputs[1])
            total += float(col_nnz(left) @ row_nnz(right))
        return structure

    walk(root)
    return total


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_rewrite_compile_time(benchmark, profile):
    root = _chain(PROFILES[profile], seed=11)
    benchmark.pedantic(lambda: rewrite_chains(root, rng=12), rounds=3, iterations=1)
    benchmark.extra_info["profile"] = profile


def test_print_rewrite_benefit(benchmark):
    def sweep():
        rows = []
        for profile, sparsities in PROFILES.items():
            root = _chain(sparsities, seed=11)
            rewritten = rewrite_chains(root, rng=12)
            before = _true_cost(root)
            after = _true_cost(rewritten)
            rows.append([profile, before, after, before / max(after, 1.0)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["Profile", "left-deep cost", "rewritten cost", "speedup"],
        rows,
        title=f"Chain rewrite benefit ({len(next(iter(PROFILES.values())))}-matrix "
              f"{N}x{N} chains, true multiply-pair costs)",
    )
    write_result("rewrite_benefit", table)

    speedups = {row[0]: row[3] for row in rows}
    # Where an ultra-sparse matrix sits late in a left-deep chain, the
    # rewrite reorders around it and wins; uniform chains have nothing to
    # gain and must not regress materially.
    assert speedups["ultra-sparse middle"] > 1.05
    assert speedups["ultra-sparse tail"] > 1.05
    assert speedups["uniform"] > 0.9
    # A head-positioned sparse matrix already makes left-deep optimal.
    assert speedups["ultra-sparse head"] > 0.95