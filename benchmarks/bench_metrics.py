"""Metrics-overhead benchmark: the observability layer must stay off the
hot path.

PR 6 routed every ``count()``/``observe()`` call and the accuracy residual
ledger through the process-wide :mod:`repro.observability.metrics`
registry. The hot-path kernels (Algorithm 1, propagation, the chain DP)
deliberately guard their telemetry behind ``tracing_enabled()`` and raw
``HOTPATH`` slot increments, so the *disabled* path — tracing off, flight
recorder disarmed — must cost essentially nothing. This module checks
that claim two ways:

1. **End-to-end**: re-run the key ``bench_hotpath`` kernels with the
   metrics layer in its default (disabled-tracing) state and compare each
   against the committed ``benchmarks/baselines/hotpath_baseline.json``,
   calibration-normalized the same way
   ``check_hotpath_regression.py`` does. With
   ``REPRO_BENCH_ENFORCE_METRICS=1`` the ratio must stay within
   ``MAX_OVERHEAD`` (2%) plus a small timer-noise allowance; otherwise
   the lenient ``REPRO_PERF_TOLERANCE`` bound applies (cross-machine
   timings are noisy, so CI pins the scale and enforces on one runner).
2. **Microbenchmarks**: per-call cost of the observability primitives in
   both states — a disabled ``timed_span``, an always-on ``metric_inc`` /
   ``metric_observe``, a ``record_residual`` — so a future regression
   shows up as nanoseconds, not as a diffuse end-to-end slowdown.

Results land in ``benchmarks/results/BENCH_metrics.json``. Runs
standalone (``PYTHONPATH=src python benchmarks/bench_metrics.py``) or
under pytest.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from conftest import bench_scale, write_bench_json

BASELINE_FILE = Path(__file__).parent / "baselines" / "hotpath_baseline.json"

#: Key kernels whose disabled-path overhead the acceptance criterion bounds.
KEY_BENCHES = ("sketch_construct", "alg1_estimate", "propagate", "chain_dp20")

#: Maximum acceptable metrics overhead on the key kernels (ratio - 1).
MAX_OVERHEAD = 0.02

#: Extra slack for per-run timer noise when enforcing strictly: best-of-N
#: microbenchmark timings still jitter a few percent run to run, so the
#: strict gate allows MAX_OVERHEAD plus this much measurement noise.
NOISE_ALLOWANCE = 0.08

DEFAULT_TOLERANCE = 2.0


def _time_per_call(fn, *, calls: int = 20000, rounds: int = 5) -> float:
    """Best-of-*rounds* seconds per call of ``fn`` (tight loop)."""
    fn()
    best = float("inf")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(calls):
                fn()
            best = min(best, (time.perf_counter() - start) / calls)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _primitive_costs() -> dict:
    """Per-call cost (seconds) of each observability primitive."""
    from repro.observability import FLIGHT, RecordingCollector, using_collector
    from repro.observability.metrics import (
        metric_inc,
        metric_observe,
        record_residual,
    )
    from repro.observability.trace import count, timed_span, tracing_enabled

    costs: dict = {}

    # The guard every hot-path kernel actually uses.
    costs["tracing_enabled"] = _time_per_call(tracing_enabled, calls=100000)

    # Disabled span: NullCollector short-circuits before any timestamping.
    def disabled_span():
        with timed_span("bench.noop"):
            pass

    costs["timed_span_disabled"] = _time_per_call(disabled_span)

    # Always-on registry primitives (these run regardless of tracing).
    flight_was_enabled = FLIGHT.enabled
    FLIGHT.enabled = False  # isolate the registry cost from the ring append
    try:
        costs["metric_inc"] = _time_per_call(lambda: metric_inc("bench.inc"))
        costs["metric_observe"] = _time_per_call(
            lambda: metric_observe("bench.obs", 0.5)
        )
        costs["count_disabled_tracing"] = _time_per_call(
            lambda: count("bench.count")
        )
        costs["record_residual"] = _time_per_call(
            lambda: record_residual(
                source="bench", estimator="noop", workload="w", op="op",
                estimate=10.0, truth=12.0,
            ),
            calls=5000,
        )
    finally:
        FLIGHT.enabled = flight_was_enabled

    # Enabled-path numbers for context (documented, never enforced).
    collector = RecordingCollector()
    with using_collector(collector):
        def enabled_span():
            with timed_span("bench.noop"):
                pass

        costs["timed_span_enabled"] = _time_per_call(enabled_span, calls=5000)
        costs["count_enabled_tracing"] = _time_per_call(
            lambda: count("bench.count"), calls=5000
        )
    return costs


def _load_baseline() -> dict | None:
    if not BASELINE_FILE.exists():
        return None
    return json.loads(BASELINE_FILE.read_text())


def _compare_to_baseline(hotpath: dict, baseline: dict) -> dict:
    ratio = hotpath["calibration_seconds"] / baseline["calibration_seconds"]
    overhead = {}
    for name in KEY_BENCHES:
        base = baseline["benchmarks"].get(name, {}).get("seconds_per_op")
        if not base:
            continue
        allowed = base * ratio
        current = hotpath["benchmarks"][name]["seconds_per_op"]
        overhead[name] = {
            "baseline_seconds_per_op": base,
            "normalized_baseline": allowed,
            "current_seconds_per_op": current,
            "ratio": current / allowed,
        }
    return {"calibration_ratio": ratio, "overhead": overhead}


def run_metrics_benchmark(scale: float | None = None) -> dict:
    from bench_hotpath import run_hotpath_benchmark

    scale = bench_scale() if scale is None else scale
    hotpath = run_hotpath_benchmark(scale)

    payload: dict = {
        "scale": scale,
        "calibration_seconds": hotpath["calibration_seconds"],
        "benchmarks": {
            name: hotpath["benchmarks"][name] for name in KEY_BENCHES
        },
        "primitives": _primitive_costs(),
        "max_overhead": MAX_OVERHEAD,
    }

    baseline = _load_baseline()
    if baseline is not None and baseline.get("scale") == scale:
        payload["baseline"] = _compare_to_baseline(hotpath, baseline)
        bound = 1.0 + MAX_OVERHEAD + NOISE_ALLOWANCE
        flagged = [
            name for name, entry in payload["baseline"]["overhead"].items()
            if entry["ratio"] > bound
        ]
        if flagged:
            # A full-suite run jitters far more than the kernels themselves
            # (CPU contention, cache state from earlier benches). Before
            # declaring a leak, re-measure once and keep the per-kernel
            # best of both runs — a genuine metrics regression survives a
            # re-run; contention noise does not.
            rerun = run_hotpath_benchmark(scale)
            for name in KEY_BENCHES:
                again = rerun["benchmarks"][name]["seconds_per_op"]
                if again < hotpath["benchmarks"][name]["seconds_per_op"]:
                    hotpath["benchmarks"][name]["seconds_per_op"] = again
            payload["benchmarks"] = {
                name: hotpath["benchmarks"][name] for name in KEY_BENCHES
            }
            payload["baseline"] = _compare_to_baseline(hotpath, baseline)
            payload["remeasured"] = flagged
    elif baseline is not None:
        payload["baseline_scale_mismatch"] = {
            "baseline_scale": baseline.get("scale"),
            "run_scale": scale,
        }
    return payload


def _render(payload: dict) -> str:
    lines = [
        f"metrics disabled-path overhead (scale={payload['scale']:g}, "
        f"budget {payload['max_overhead']:.0%})",
        f"{'bench':<24}{'us/op':>12}{'vs baseline':>14}",
    ]
    overhead = payload.get("baseline", {}).get("overhead", {})
    for name, result in payload["benchmarks"].items():
        entry = overhead.get(name)
        shown = f"{entry['ratio']:.3f}x" if entry else "-"
        lines.append(
            f"{name:<24}{result['seconds_per_op'] * 1e6:>12.1f}{shown:>14}"
        )
    lines.append("")
    lines.append(f"{'primitive':<24}{'ns/call':>12}")
    for name, seconds in payload["primitives"].items():
        lines.append(f"{name:<24}{seconds * 1e9:>12.1f}")
    return "\n".join(lines)


def _enforce(payload: dict) -> None:
    strict = os.environ.get("REPRO_BENCH_ENFORCE_METRICS") == "1"
    tolerance = float(
        os.environ.get("REPRO_PERF_TOLERANCE", str(DEFAULT_TOLERANCE))
    )
    bound = (1.0 + MAX_OVERHEAD + NOISE_ALLOWANCE) if strict else tolerance
    overhead = payload.get("baseline", {}).get("overhead")
    if overhead is None:
        assert not strict, (
            "REPRO_BENCH_ENFORCE_METRICS=1 but no usable baseline: "
            f"{payload.get('baseline_scale_mismatch') or BASELINE_FILE}"
        )
        return
    for name, entry in overhead.items():
        assert entry["ratio"] <= bound, (
            f"{name}: {entry['ratio']:.3f}x the calibrated baseline exceeds "
            f"the {bound:.3f}x bound — the metrics layer is leaking onto "
            "the hot path"
        )


def test_metrics_overhead():
    payload = run_metrics_benchmark()
    write_bench_json("metrics", payload)
    print(_render(payload))
    _enforce(payload)


if __name__ == "__main__":
    result = run_metrics_benchmark()
    write_bench_json("metrics", result)
    print(_render(result))
    _enforce(result)
