"""Shared helpers for the accuracy benchmarks (Figures 10-15, Table 4)."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.estimators import make_estimator
from repro.estimators.base import SparsityEstimator
from repro.sparsest.runner import EstimateOutcome, EstimationRequest, execute

#: The estimator lineup of Figures 10/11 (legend order).
FIGURE_LINEUP: Sequence[tuple[str, dict]] = (
    ("meta_wc", {}),
    ("meta_ac", {}),
    ("sampling", {}),
    ("mnc_basic", {}),
    ("mnc", {}),
    ("density_map", {}),
    ("bitset", {}),
    ("layered_graph", {}),
)


def lineup(names_with_kwargs: Iterable[tuple[str, dict]] = FIGURE_LINEUP) -> List[SparsityEstimator]:
    """Instantiate a fresh estimator lineup."""
    return [make_estimator(name, **kwargs) for name, kwargs in names_with_kwargs]


def collect_outcomes(
    case_ids: Sequence[str],
    estimators: Sequence[SparsityEstimator],
    scale: float,
    seed: int = 0,
) -> List[EstimateOutcome]:
    """Run every estimator on every use case (skipping unsupported).

    Requests carry the estimator *instances*, so state (e.g. sampling
    seeds) is shared across cells exactly as the figures were generated —
    which also pins execution to the serial path.
    """
    requests = [
        EstimationRequest(
            use_case=case_id, estimator=estimator, scale=scale, seed=seed,
        )
        for case_id in case_ids
        for estimator in estimators
    ]
    return [
        result.outcome for result in execute(requests, on_error="raise")
    ]
