"""Error propagation through product chains (paper Section 2.5).

Ioannidis/Christodoulakis-style analysis: estimation errors propagate
multiplicatively through chains, yet sparsity estimation stays feasible in
practice because real matrices carry exploitable structure. Measured here
on two chain families:

- **uniform** chains (i.i.d. random blocks): the uniformity assumption
  holds, so MetaAC and MNC both stay near-exact at every depth;
- **structured** chains (skew-preserving power-law blocks): MetaAC starts
  out ~40x wrong and only recovers as products densify toward uniformity,
  while MNC starts exact; with depth, MNC's propagated structure decays
  (the same effect as Figure 13) and its error grows slowly.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.core.chain import chain_sketches, estimate_chain_nnz
from repro.estimators import make_estimator
from repro.ir import leaf, matmul
from repro.ir.estimate import estimate_root_nnz
from repro.matrix.conversion import as_csr
from repro.matrix.ops import matmul as true_matmul
from repro.matrix.random import power_law_columns, random_sparse
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table

DEPTHS = [1, 2, 3, 4, 5]
N = 800


def _structured_chain(depth, seed=0):
    """Skew-preserving chain: power-law column blocks, alternately
    transposed so heavy columns keep meeting heavy rows."""
    rng = np.random.default_rng(seed)
    matrices = []
    for index in range(depth + 1):
        block = power_law_columns(N, N, total_nnz=4000, alpha=1.4, seed=rng)
        if index % 2 == 1:
            block = as_csr(block.transpose())
        matrices.append(block)
    return matrices


def _uniform_chain(depth, seed=0):
    rng = np.random.default_rng(seed)
    return [random_sparse(N, N, 0.01, seed=rng) for _ in range(depth + 1)]


def _truths(matrices):
    current = matrices[0]
    truths = []
    for matrix in matrices[1:]:
        current = true_matmul(current, matrix)
        truths.append(float(current.nnz))
    return truths


def _chain_errors(matrices, estimator_name):
    estimator = make_estimator(estimator_name)
    truths = _truths(matrices)
    nodes = [leaf(matrix) for matrix in matrices]
    errors = []
    root = nodes[0]
    for index, node in enumerate(nodes[1:]):
        root = matmul(root, node)
        estimate = estimate_root_nnz(root, estimator)
        errors.append(relative_error(truths[index], estimate))
    return errors


@pytest.mark.parametrize("kind", ["structured", "uniform"])
def test_full_chain_estimation_time(benchmark, kind):
    matrices = (_structured_chain if kind == "structured" else _uniform_chain)(4)
    sketches = chain_sketches(matrices)
    benchmark.pedantic(
        lambda: estimate_chain_nnz(sketches, rng=1), rounds=3, iterations=1
    )
    benchmark.extra_info["kind"] = kind


def test_print_error_propagation(benchmark):
    def sweep():
        structured = _structured_chain(DEPTHS[-1])
        uniform = _uniform_chain(DEPTHS[-1])
        errors = {}
        for kind, matrices in (("structured", structured), ("uniform", uniform)):
            for name in ("meta_ac", "mnc"):
                errors[(kind, name)] = _chain_errors(matrices, name)
        rows = [
            [depth,
             errors[("uniform", "meta_ac")][i], errors[("uniform", "mnc")][i],
             errors[("structured", "meta_ac")][i], errors[("structured", "mnc")][i]]
            for i, depth in enumerate(DEPTHS)
        ]
        return rows, errors

    rows, errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["products", "uniform MetaAC", "uniform MNC",
         "structured MetaAC", "structured MNC"],
        rows,
        title=f"Error propagation through {N}x{N} product chains (Sec 2.5)",
    )
    write_result("error_propagation", table)

    structured_meta = errors[("structured", "meta_ac")]
    structured_mnc = errors[("structured", "mnc")]
    # Uniform chains: both estimators stay accurate at every depth.
    assert max(errors[("uniform", "meta_ac")]) < 1.5
    assert max(errors[("uniform", "mnc")]) < 1.5
    # Structured single product: MetaAC is an order of magnitude off,
    # MNC near-exact — the "structure makes estimation feasible" claim.
    assert structured_meta[0] > 10 * structured_mnc[0]
    assert structured_mnc[0] < 1.1
    # With depth, products densify: MetaAC recovers while MNC's propagated
    # structure decays (the Figure 13 effect).
    assert structured_meta[-1] < structured_meta[0]
    assert structured_mnc[-1] > structured_mnc[0]
