"""Figure 10: accuracy on B1 Struct (structured synthetic products).

Prints the relative errors of every estimator on B1.1-B1.5 and asserts the
paper's qualitative outcome: MNC and Bitset exact everywhere; MNC Basic
loses B1.5; metadata/sampling/density-map estimators show large errors on
the structured cases.
"""

import pytest

from accuracy import FIGURE_LINEUP, collect_outcomes, lineup
from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.report import outcomes_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B1.1", "B1.2", "B1.3", "B1.4", "B1.5"]


@pytest.mark.parametrize("case_id", CASE_IDS)
@pytest.mark.parametrize("name", [n for n, _ in FIGURE_LINEUP])
def test_estimation_time(benchmark, scale, name, case_id):
    """Per-(estimator, case) estimation timing with accuracy in extra_info."""
    case = get_use_case(case_id)
    root = case.build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator(name)
    try:
        value = benchmark.pedantic(
            lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
        )
    except Exception:
        pytest.skip(f"{name} not applicable to {case_id}")
    from repro.sparsest.metrics import relative_error

    benchmark.extra_info["relative_error"] = relative_error(truth, value)
    benchmark.extra_info["use_case"] = case_id


def test_print_fig10(benchmark, scale):
    outcomes = benchmark.pedantic(
        lambda: collect_outcomes(CASE_IDS, lineup(), scale), rounds=1, iterations=1
    )
    table = outcomes_table(
        outcomes, title=f"Figure 10: relative errors on B1 Struct (scale={scale})"
    )
    write_result("fig10_accuracy_b1", table)

    by_key = {(o.estimator, o.use_case): o for o in outcomes}
    # MNC and Bitset exact on all five (paper: "only bitset and MNC yielded
    # exact results for all B1 scenarios").
    for case_id in CASE_IDS:
        assert by_key[("MNC", case_id)].relative_error == pytest.approx(1.0)
        assert by_key[("Bitset", case_id)].relative_error == pytest.approx(1.0)
    # B1.5 is where the upper bound rescues full MNC but not MNC Basic.
    assert by_key[("MNC Basic", "B1.5")].relative_error > 10
    # MetaWC outperforms MetaAC only on B1.4 (dense output).
    assert (
        by_key[("MetaWC", "B1.4")].relative_error
        < by_key[("MetaAC", "B1.4")].relative_error
    )
    # Density map struggles on the structured B1.4/B1.5 cases.
    assert by_key[("DMap", "B1.4")].relative_error > 10
    assert by_key[("DMap", "B1.5")].relative_error > 10
