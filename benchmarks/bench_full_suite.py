"""The headline table: every estimator on every SparsEst use case.

Combines the accuracy figures into one grand run with per-estimator
aggregates (geometric-mean error, exact counts, wins), the summary a
reader checks first. Asserts the repository's headline claim: MNC has the
best geometric-mean error of all practical estimators while being exact on
more cases than anything except the (non-scalable) bitset.
"""

import math

import pytest

from conftest import write_bench_json, write_result
from repro.sparsest.suite import run_suite


def test_full_suite(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_suite(scale=scale), rounds=1, iterations=1
    )
    write_result("full_suite", result.render())
    write_bench_json("full_suite", {
        "benchmark": "full_suite",
        "scale": result.scale,
        "repetitions": result.repetitions,
        "outcomes": [
            {
                "name": f"{o.use_case}/{o.estimator}",
                "use_case": o.use_case,
                "estimator": o.estimator,
                "seconds": o.seconds,
                "rel_error": o.relative_error,
                "status": o.status,
            }
            for o in result.outcomes
        ],
        "summaries": [
            {
                "estimator": s.estimator,
                "geo_mean_error": s.geometric_mean_error,
                "worst_error": s.worst_error,
                "exact": s.exact,
                "failures": s.failures,
                "total_seconds": s.total_seconds,
            }
            for s in result.summaries
        ],
    })

    summaries = {summary.estimator: summary for summary in result.summaries}
    mnc = summaries["MNC"]
    # Exact (error 1.0) on at least 9 of the 15 use cases.
    assert mnc.exact >= 9
    assert mnc.failures == 0
    # Best geometric mean among the scalable estimators.
    for name in ("MetaWC", "MetaAC", "Sample", "DMap", "MNC Basic"):
        other = summaries[name]
        assert mnc.geometric_mean_error <= other.geometric_mean_error + 1e-9, name
    # The bitset is exact wherever it runs but cannot cover everything the
    # paper throws at it at scale; MNC runs everywhere.
    assert mnc.supported == 15
    # The layered graph covers only pure product chains.
    assert summaries["LGraph"].failures >= 4
    # MNC's worst error across all fifteen cases stays below 2 at this
    # scale (paper: worst observed on B3.5 at 1.33, B3.3 aside).
    assert math.isfinite(mnc.worst_error)
    assert mnc.worst_error < 2.5