"""Figure 14: accuracy on the mixed B3 expressions (B3.1, B3.4, B3.5).

These chains mix products, element-wise operations, and reorganizations, so
the layered graph does not apply; the bitset fails (OOM) at paper scale on
B3.1/B3.4 and is subject to the runner's memory budget here.
"""

import pytest

from accuracy import collect_outcomes, lineup
from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import outcomes_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B3.1", "B3.4", "B3.5"]
LINEUP = (
    ("meta_wc", {}),
    ("meta_ac", {}),
    ("mnc_basic", {}),
    ("mnc", {}),
    ("density_map", {}),
    ("bitset", {}),
)


@pytest.mark.parametrize("case_id", CASE_IDS)
@pytest.mark.parametrize("name", [n for n, _ in LINEUP])
def test_estimation_time(benchmark, scale, name, case_id):
    case = get_use_case(case_id)
    root = case.build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator(name)
    value = benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["relative_error"] = relative_error(truth, value)
    benchmark.extra_info["use_case"] = case_id


def test_print_fig14(benchmark, scale):
    outcomes = benchmark.pedantic(
        lambda: collect_outcomes(CASE_IDS, lineup(LINEUP), scale),
        rounds=1, iterations=1,
    )
    table = outcomes_table(
        outcomes, title=f"Figure 14: relative errors on B3 Chain (scale={scale})"
    )
    write_result("fig14_accuracy_b3", table)

    by_key = {(o.estimator, o.use_case): o for o in outcomes}
    # B3.1: reshape is sparsity-preserving, results mirror B2.1 — MNC exact.
    assert by_key[("MNC", "B3.1")].relative_error == pytest.approx(1.0)
    # B3.4: the known-ratings mask aligns with the dense-ish predictions;
    # MNC nearly exact while MetaAC/DMap miss the structure.
    assert by_key[("MNC", "B3.4")].relative_error < 1.25
    assert (
        by_key[("MetaAC", "B3.4")].relative_error
        > by_key[("MNC", "B3.4")].relative_error
    )
    # B3.5: MNC's error is significantly below MetaWC/MetaAC/DMap
    # (paper: 1.33 vs 2.13 / 2.87 / 2.71).
    mnc = by_key[("MNC", "B3.5")].relative_error
    assert mnc < by_key[("MetaAC", "B3.5")].relative_error
    assert mnc < by_key[("DMap", "B3.5")].relative_error
