"""Figure 9: analytical synopsis size overhead.

Panel (a): constant dimensions m = n = 1M, sparsity 1e-8 .. 1.
Panel (b): constant non-zeros (1G), dimensions 1e5 .. 1e9.

These are the paper's analytical curves, regenerated from the same size
models the concrete synopses implement; a small empirical cross-check
validates the models against actual builds at a feasible size.
"""

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.estimators.sizing import synopsis_size_bytes
from repro.matrix.random import random_sparse
from repro.sparsest.report import simple_table

GB = 1024.0**3
NAMES = ["bitset", "layered_graph", "density_map", "mnc"]
LABELS = {"bitset": "Bitset", "layered_graph": "LGraph",
          "density_map": "DMap", "mnc": "MNC"}


def test_model_matches_reality(benchmark):
    """Cross-check the analytical models against real synopses."""
    matrix = random_sparse(4000, 2000, 0.01, seed=91)

    def build_all():
        return {
            name: make_estimator(name).build(matrix).size_bytes()
            for name in NAMES
        }

    actual = benchmark.pedantic(build_all, rounds=1, iterations=1)
    for name in NAMES:
        model = synopsis_size_bytes(name, 4000, 2000, matrix.nnz)
        # The layered-graph model counts r-vectors for every node of the
        # two-level graph while the implementation materializes only the
        # column frontier (lazily), hence the wider tolerance there.
        factor = 4.0 if name == "layered_graph" else 2.5
        assert actual[name] <= model * factor + 1024
        assert model <= actual[name] * factor + 1024


def test_print_fig9_tables(benchmark):
    """Render both Figure 9 panels."""

    def compute():
        # Panel (a): 1M x 1M, sparsity sweep.
        rows_a = []
        m = n = 1_000_000
        for exponent in range(-8, 1):
            sparsity = 10.0**exponent
            nnz = int(sparsity * m * n)
            row = [f"1e{exponent}"]
            for name in NAMES:
                row.append(synopsis_size_bytes(name, m, n, nnz) / GB)
            rows_a.append(row)
        # Panel (b): constant 1G non-zeros, dimension sweep.
        rows_b = []
        nnz = 10**9
        for exponent in range(5, 10):
            dim = 10**exponent
            row = [f"1e{exponent}"]
            for name in NAMES:
                row.append(synopsis_size_bytes(name, dim, dim, min(nnz, dim * dim)) / GB)
            rows_b.append(row)
        return rows_a, rows_b

    rows_a, rows_b = benchmark.pedantic(compute, rounds=1, iterations=1)
    headers = ["sparsity"] + [LABELS[n] for n in NAMES]
    table_a = simple_table(
        headers, rows_a,
        title="Figure 9(a): synopsis size [GB], dims 1M x 1M, varying sparsity",
    )
    headers_b = ["dimension"] + [LABELS[n] for n in NAMES]
    table_b = simple_table(
        headers_b, rows_b,
        title="Figure 9(b): synopsis size [GB], nnz=1G, varying dimension",
    )
    write_result("fig09_synopsis_size", table_a + "\n\n" + table_b)

    # Paper claims at 1M x 1M: MNC ~tens of MB; Bitset ~125 GB; DMap ~122 MB.
    bitset_dense = rows_a[-1][1 + NAMES.index("bitset")]
    mnc_dense = rows_a[-1][1 + NAMES.index("mnc")]
    dmap_dense = rows_a[-1][1 + NAMES.index("density_map")]
    assert bitset_dense == pytest.approx(125000 / 1024, rel=0.05)  # ~116-125 GB
    assert mnc_dense < 0.1  # well under 100 MB
    assert dmap_dense < 0.2
    # LGraph grows with nnz and eventually exceeds the bitset (panel a).
    lgraph = [row[1 + NAMES.index("layered_graph")] for row in rows_a]
    bitset = [row[1 + NAMES.index("bitset")] for row in rows_a]
    assert lgraph[0] < bitset[0]
    assert lgraph[-1] > bitset[-1]
