"""Figure 11: accuracy on B2 Real (real-structure operations).

B2.1-B2.4 are matrix products over the dataset stand-ins; B2.5 is the
element-wise image mask (layered graph excluded, as in the paper).
"""

import pytest

from accuracy import FIGURE_LINEUP, collect_outcomes, lineup
from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import outcomes_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B2.1", "B2.2", "B2.3", "B2.4", "B2.5"]


@pytest.mark.parametrize("case_id", CASE_IDS)
@pytest.mark.parametrize("name", [n for n, _ in FIGURE_LINEUP])
def test_estimation_time(benchmark, scale, name, case_id):
    case = get_use_case(case_id)
    root = case.build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator(name)
    try:
        value = benchmark.pedantic(
            lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
        )
    except Exception:
        pytest.skip(f"{name} not applicable to {case_id}")
    benchmark.extra_info["relative_error"] = relative_error(truth, value)
    benchmark.extra_info["use_case"] = case_id


def test_print_fig11(benchmark, scale):
    outcomes = benchmark.pedantic(
        lambda: collect_outcomes(CASE_IDS, lineup(), scale), rounds=1, iterations=1
    )
    table = outcomes_table(
        outcomes, title=f"Figure 11: relative errors on B2 Real (scale={scale})"
    )
    write_result("fig11_accuracy_b2", table)

    by_key = {(o.estimator, o.use_case): o for o in outcomes}
    # MNC exact on the NLP encode, the column projection, and the mask.
    for case_id in ("B2.1", "B2.2", "B2.5"):
        assert by_key[("MNC", case_id)].relative_error == pytest.approx(1.0)
    # Small MNC errors on the two graph products (paper: 1.17 and 1.09).
    assert by_key[("MNC", "B2.3")].relative_error < 1.6
    assert by_key[("MNC", "B2.4")].relative_error < 1.6
    # Layered graph: consistently low errors on products, excluded on B2.5.
    assert by_key[("LGraph", "B2.3")].relative_error < 1.6
    assert by_key[("LGraph", "B2.5")].status == "unsupported"
    # DMap fails to see the varying column sparsity of Covertype (B2.2)
    # with its default 256-block.
    assert (
        by_key[("DMap", "B2.2")].relative_error
        > by_key[("MNC", "B2.2")].relative_error
    )
