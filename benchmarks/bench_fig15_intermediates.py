"""Figure 15: accuracy of ALL intermediates of the B3.2 scale-and-shift
chain ``S^T X^T diag(w) X S B``.

For matrix-chain optimization the error of every subchain matters. This
benchmark materializes the ground truth of all 15 subchains (left-deep) and
compares the DMap and MNC relative errors as the paper's two triangles.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import bench_scale, write_result
from repro.estimators import make_estimator
from repro.matrix import ops as mops
from repro.matrix.conversion import as_csr
from repro.opcodes import Op
from repro.sparsest import datasets, generators
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table

OPERAND_LABELS = ["St", "Xt", "diag(w)", "X", "S", "B"]


def _operands(scale):
    rows = max(8, int(round(20_000 * scale)))
    images = datasets.mnist_like(rows=rows, seed=46)
    ones = np.ones((rows, 1))
    x = as_csr(sp.hstack([sp.csr_matrix(images), sp.csr_matrix(ones)], format="csr"))
    n = x.shape[1]
    s = generators.scale_shift_matrix(n)
    rng = np.random.default_rng(32)
    w = as_csr(rng.random((rows, 1)) + 0.1)
    b = as_csr(rng.random((n, 3)) + 0.1)
    return [
        mops.transpose(s), mops.transpose(x), mops.diag_matrix(w), x, s, b,
    ]


def _truth_table(operands):
    """Exact nnz of every subchain (i, j), evaluated left-deep."""
    count = len(operands)
    truth = {}
    for i in range(count):
        current = operands[i]
        for j in range(i + 1, count):
            current = mops.matmul(current, operands[j])
            truth[(i, j)] = current.nnz
    return truth


def _estimate_table(operands, estimator):
    """Left-deep estimated nnz of every subchain (i, j)."""
    count = len(operands)
    synopses = [estimator.build(matrix) for matrix in operands]
    estimates = {}
    for i in range(count):
        current = synopses[i]
        for j in range(i + 1, count):
            estimates[(i, j)] = estimator.estimate_nnz(
                Op.MATMUL, [current, synopses[j]]
            )
            current = estimator.propagate(Op.MATMUL, [current, synopses[j]])
    return estimates


def _triangle(truth, estimates):
    rows = []
    count = len(OPERAND_LABELS)
    for i in range(count - 1):
        row = [OPERAND_LABELS[i]]
        for j in range(1, count):
            if j <= i:
                row.append("")
            else:
                row.append(relative_error(truth[(i, j)], estimates[(i, j)]))
        rows.append(row)
    return simple_table(["from \\ to"] + OPERAND_LABELS[1:], rows)


@pytest.mark.parametrize("name", ["density_map", "mnc"])
def test_all_intermediates_time(benchmark, scale, name):
    operands = _operands(scale)
    estimator = make_estimator(name)
    benchmark.pedantic(
        lambda: _estimate_table(operands, estimator), rounds=1, iterations=1
    )


def test_print_fig15(benchmark, scale):
    def run():
        operands = _operands(scale)
        truth = _truth_table(operands)
        dmap = _estimate_table(operands, make_estimator("density_map"))
        mnc = _estimate_table(operands, make_estimator("mnc"))
        return truth, dmap, mnc

    truth, dmap, mnc = benchmark.pedantic(run, rounds=1, iterations=1)
    final = (0, len(OPERAND_LABELS) - 1)
    table = (
        f"Figure 15: relative errors of all B3.2 intermediates (scale={bench_scale()})\n\n"
        "(a) DMap\n" + _triangle(truth, dmap) +
        "\n\n(b) MNC\n" + _triangle(truth, mnc)
    )
    write_result("fig15_intermediates", table)

    mnc_final = relative_error(truth[final], mnc[final])
    # Paper: MNC's final error is 1.002 — near-exact on the full chain.
    assert mnc_final < 1.2
    # Across all 15 intermediates the density map's worst error dwarfs
    # MNC's (paper: 98.6 vs 1.46; at this scale the final output saturates
    # to dense for both, so the separation shows up on the inner subchains).
    mnc_errors = [relative_error(truth[key], mnc[key]) for key in truth]
    dmap_errors = [relative_error(truth[key], dmap[key]) for key in truth]
    assert max(dmap_errors) > 2 * max(mnc_errors)
    assert float(np.mean(mnc_errors)) < float(np.mean(dmap_errors))
    # MNC is exact on many single products of the chain (first off-diagonal).
    exact_singles = sum(
        1 for i in range(5)
        if relative_error(truth[(i, i + 1)], mnc[(i, i + 1)]) < 1.001
    )
    assert exact_singles >= 3
