"""M3-style experiment: how estimation errors translate into runtime
decisions (paper Section 5 marks this metric optional; reproduced here as
an extension).

Every estimator drives format selection and memory pre-allocation for all
operations of the single-operation use cases B1.1-B2.5; reported per
estimator: wrong-format decisions and total allocation regret relative to
a truth-optimal allocator.
"""

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.runtime import execute_with_decisions
from repro.sparsest.report import simple_table
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B1.1", "B1.2", "B1.3", "B1.4", "B1.5",
            "B2.1", "B2.2", "B2.3", "B2.4", "B2.5"]
LINEUP = ["meta_wc", "meta_ac", "density_map", "mnc_basic", "mnc"]


def _summaries(scale):
    totals = {}
    for name in LINEUP:
        estimator = make_estimator(name)
        operations = 0
        wrong = 0
        regret = 0.0
        optimal = 0.0
        for case_id in CASE_IDS:
            root = get_use_case(case_id).build(scale=scale, seed=0)
            summary = execute_with_decisions(root, estimator)
            operations += summary.operations
            wrong += summary.wrong_formats
            regret += summary.report.regret_bytes
            optimal += summary.report.optimal_bytes
        totals[estimator.name] = (operations, wrong, regret, optimal)
    return totals


@pytest.mark.parametrize("name", LINEUP)
def test_decision_time(benchmark, scale, name):
    root = get_use_case("B2.1").build(scale=scale, seed=0)
    estimator = make_estimator(name)
    benchmark.pedantic(
        lambda: execute_with_decisions(root, estimator), rounds=1, iterations=1
    )


def test_print_allocation_report(benchmark, scale):
    totals = benchmark.pedantic(lambda: _summaries(scale), rounds=1, iterations=1)
    rows = []
    for name, (operations, wrong, regret, optimal) in totals.items():
        ratio = regret / optimal if optimal else 0.0
        rows.append([name, operations, wrong, regret / 1e6, f"{ratio * 100:.1f}%"])
    table = simple_table(
        ["Estimator", "ops", "wrong formats", "regret [MB]", "regret vs optimal"],
        rows,
        title=(
            "M3 extension: allocation decisions over B1.1-B2.5 "
            f"(scale={scale})"
        ),
    )
    write_result("m3_allocation", table)

    # MNC causes the fewest wrong-format decisions and the least regret of
    # the estimators that scale (i.e. excluding the exact bitset).
    wrongs = {name: values[1] for name, values in totals.items()}
    regrets = {name: values[2] for name, values in totals.items()}
    assert wrongs["MNC"] <= min(wrongs["MetaAC"], wrongs["MetaWC"], wrongs["DMap"])
    assert regrets["MNC"] <= min(regrets["MetaAC"], regrets["MetaWC"], regrets["DMap"])
    assert wrongs["MNC"] == 0
