"""Figure 7: construction and estimation runtime for varying sparsity.

Product of two n x n random matrices (default n = 2000, vs the paper's
20000) with sparsity in {0.001, 0.01, 0.1, 0.99}. Reported per estimator:
construction time, estimation time, and their total; the true sparse matrix
multiplication (scipy) serves as the "MM" baseline, as in the paper.
"""

import time

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.matrix.ops import matmul
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.sparsest.report import simple_table

N = 2000
SPARSITIES = [0.001, 0.01, 0.1, 0.99]

ESTIMATORS = ["sampling", "mnc", "density_map", "bitset", "layered_graph"]


def _pair(sparsity):
    return (
        random_sparse(N, N, sparsity, seed=71),
        random_sparse(N, N, sparsity, seed=72),
    )


def _measure(name, a, b):
    estimator = make_estimator(name)
    start = time.perf_counter()
    synopsis_a = estimator.build(a)
    synopsis_b = estimator.build(b)
    construct = time.perf_counter() - start
    start = time.perf_counter()
    estimator.estimate_nnz(Op.MATMUL, [synopsis_a, synopsis_b])
    estimate = time.perf_counter() - start
    return construct, estimate


@pytest.mark.parametrize("sparsity", SPARSITIES)
@pytest.mark.parametrize("name", ESTIMATORS)
def test_total_estimation_time(benchmark, name, sparsity):
    """Figure 7(a): total estimation time (construction + estimation)."""
    if name == "bitset" and sparsity >= 0.99:
        rounds = 1
    else:
        rounds = 2
    a, b = _pair(sparsity)
    estimator = make_estimator(name)

    def run():
        sa, sb = estimator.build(a), estimator.build(b)
        return estimator.estimate_nnz(Op.MATMUL, [sa, sb])

    benchmark.pedantic(run, rounds=rounds, iterations=1)
    benchmark.extra_info["sparsity"] = sparsity
    benchmark.extra_info["estimator"] = name


def test_print_fig7_tables(benchmark):
    """Render the three Figure 7 panels as tables."""

    def sweep():
        rows_total, rows_construct, rows_estimate = [], [], []
        for sparsity in SPARSITIES:
            a, b = _pair(sparsity)
            start = time.perf_counter()
            matmul(a, b)
            mm_time = time.perf_counter() - start
            total_row = [sparsity]
            construct_row = [sparsity]
            estimate_row = [sparsity]
            for name in ESTIMATORS:
                construct, estimate = _measure(name, a, b)
                total_row.append(construct + estimate)
                construct_row.append(construct)
                estimate_row.append(estimate)
            total_row.append(mm_time)
            rows_total.append(total_row)
            rows_construct.append(construct_row)
            rows_estimate.append(estimate_row)
        return rows_total, rows_construct, rows_estimate

    rows_total, rows_construct, rows_estimate = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    headers = ["sparsity"] + [
        make_estimator(n).name for n in ESTIMATORS
    ]
    tables = [
        simple_table(headers + ["MM (true)"], rows_total,
                     title=f"Figure 7(a): total estimation time [s], dims {N}x{N}"),
        simple_table(headers, rows_construct,
                     title="Figure 7(b): construction time [s]"),
        simple_table(headers, rows_estimate,
                     title="Figure 7(c): estimation time [s]"),
    ]
    write_result("fig07_runtime_sparsity", "\n\n".join(tables))

    # Paper shape: MNC's total stays below the bitset's. (At the paper's
    # 20K dimension this holds across the whole sweep; at this reduced scale
    # the cubic bitset cost is most visible from sparsity 0.1 on.)
    row_01 = rows_total[SPARSITIES.index(0.1)]
    mnc_index = 1 + ESTIMATORS.index("mnc")
    bitset_index = 1 + ESTIMATORS.index("bitset")
    assert row_01[mnc_index] < row_01[bitset_index]
