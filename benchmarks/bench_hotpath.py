"""Hot-path microbenchmarks: sketch construction, Algorithm 1, propagation, DP.

The estimation hot path is what the optimizer hammers: Appendix C's chain
DP evaluates O(n^3) cells, each one a ``sparse_matmul_flops`` scan plus a
``propagate_product`` that constructs a derived :class:`MNCSketch`. This
module times the four layers of that path in isolation:

- ``sketch_build_from_matrix`` — user-facing :meth:`MNCSketch.from_matrix`
  (CSR/CSC scan + extension vectors + full validation);
- ``sketch_construct`` — hot-path construction from existing count vectors
  (the trusted tier used by all internal propagation);
- ``sketch_construct_validated_eager`` — the same construction through the
  validating constructor with every summary statistic materialized, i.e.
  the pre-overhaul cost of each internal construction;
- ``alg1_estimate`` — :func:`estimate_product_nnz` (Algorithm 1);
- ``alg1_generic`` — Algorithm 1 with extensions disabled, forcing the
  generic density-map case (the log1p/tree-sum kernel) on every lane;
- ``propagate`` — :func:`propagate_product` (Eq 11 scaling + rounding);
- ``chain_dp20`` — a 20-matrix ``optimize_chain_sparse`` DP (Appendix C).

The headline numbers always run under the ``numpy`` reference backend.
When numba is importable (or ``REPRO_BENCH_BACKENDS`` names backends
explicitly), the kernelized benches are re-timed per backend after a
``backends.warmup()`` call — so JIT compile time is recorded separately
(``jit_compile_seconds``) and excluded from the per-op timings — and the
payload gains a ``backends`` section with numba-vs-numpy speedups.

Results land in ``benchmarks/results/BENCH_hotpath.json`` together with a
fixed numpy calibration time (for cross-machine normalization) and, when
``benchmarks/baselines/hotpath_pre_pr.json`` has an entry for the current
scale, speedup ratios against the pre-overhaul code. Set
``REPRO_BENCH_ENFORCE_HOTPATH=1`` to turn the speedup targets (>=2x on
construction and Algorithm 1, >=3x on the chain DP) into hard assertions,
and ``REPRO_BENCH_ENFORCE_BACKEND=1`` to require numba >=3x on the
generic Algorithm 1 case and >=2x on the chain DP versus numpy.

``benchmarks/check_hotpath_regression.py`` consumes the same JSON to guard
against future regressions; see docs/PERFORMANCE.md.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_hotpath.py``) or
under pytest.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale, write_bench_json
from repro import backends
from repro.core.estimate import estimate_product_nnz
from repro.core.propagate import propagate_product
from repro.core.sketch import MNCSketch
from repro.matrix.random import random_sparse
from repro.optimizer.mmchain import optimize_chain_sparse

BASELINE_DIR = Path(__file__).parent / "baselines"
PRE_PR_FILE = BASELINE_DIR / "hotpath_pre_pr.json"

#: Speedup targets versus the pre-overhaul baseline (enforced only when
#: ``REPRO_BENCH_ENFORCE_HOTPATH=1`` — cross-machine timings are noisy).
MIN_SPEEDUP = {
    "sketch_construct": 2.0,
    "alg1_estimate": 2.0,
    "chain_dp20": 3.0,
}

#: Benches re-timed under each non-reference kernel backend (the ones the
#: dispatch layer actually kernelizes; construction is backend-free).
BACKEND_BENCHES = ("alg1_estimate", "alg1_generic", "propagate", "chain_dp20")

#: numba-vs-numpy speedup targets (enforced only when
#: ``REPRO_BENCH_ENFORCE_BACKEND=1`` — the CI numba leg at scale 0.2).
MIN_BACKEND_SPEEDUP = {
    "alg1_generic": 3.0,
    "chain_dp20": 2.0,
}

CHAIN_LENGTH = 20

#: Summary statistics whose materialization the eager-construction bench
#: forces (pre-overhaul constructors computed all of them per sketch).
SUMMARY_ATTRS = (
    "max_hr", "max_hc", "nnz_rows", "nnz_cols", "rows_half_full",
    "cols_half_full", "rows_single", "cols_single", "total_nnz",
)


def _dims(scale: float) -> tuple[int, int]:
    """(microbench dimension, chain-DP dimension) for *scale*."""
    dim = max(200, int(round(10000 * scale)))
    chain_dim = max(100, int(round(5000 * scale)))
    return dim, chain_dim


def _time_per_op(fn, *, min_seconds: float = 0.08, rounds: int = 5) -> dict:
    """Best-of-*rounds* seconds per call of ``fn``.

    The repetition count is sized from a pilot call so each round runs for
    roughly *min_seconds*, keeping timer resolution out of the result.
    """
    fn()  # warm-up: populates lazy caches, page-faults buffers
    start = time.perf_counter()
    fn()
    pilot = time.perf_counter() - start
    reps = max(3, min(2000, int(min_seconds / max(pilot, 1e-9))))
    best = float("inf")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()  # keep collection pauses out of the timed rounds
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            best = min(best, (time.perf_counter() - start) / reps)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"seconds_per_op": best, "reps": reps}


def _calibration_seconds() -> float:
    """Fixed numpy workload used to normalize timings across machines."""
    rng = np.random.default_rng(0)
    a = rng.random((384, 384))
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(4):
            a = a @ a
            a /= np.abs(a).max()
        best = min(best, time.perf_counter() - start)
    return best


def _construct_fast(sketch: MNCSketch):
    """Hot-path construction from existing count vectors.

    Uses :meth:`MNCSketch.trusted` when the build provides it (the
    post-overhaul fast tier); falls back to the validating constructor so
    the benchmark also runs against pre-overhaul checkouts.
    """
    trusted = getattr(MNCSketch, "trusted", None)
    make = trusted if trusted is not None else MNCSketch
    def build():
        return make(
            shape=sketch.shape, hr=sketch.hr, hc=sketch.hc,
            her=sketch.her, hec=sketch.hec,
            fully_diagonal=sketch.fully_diagonal, exact=sketch.exact,
        )
    return build


def _construct_validated_eager(sketch: MNCSketch):
    """Pre-overhaul construction cost: full validation + eager summaries."""
    def build():
        built = MNCSketch(
            shape=sketch.shape, hr=sketch.hr, hc=sketch.hc,
            her=sketch.her, hec=sketch.hec,
            fully_diagonal=sketch.fully_diagonal, exact=sketch.exact,
        )
        for attr in SUMMARY_ATTRS:
            getattr(built, attr)
        return built
    return build


def _chain_sketches(chain_dim: int, length: int) -> list[MNCSketch]:
    rng = np.random.default_rng(1234)
    sparsities = 10.0 ** rng.uniform(-3.0, -1.0, size=length)
    return [
        MNCSketch.synthetic(chain_dim, chain_dim, float(s), rng=rng)
        for s in sparsities
    ]


def _load_pre_pr(scale: float) -> dict | None:
    if not PRE_PR_FILE.exists():
        return None
    table = json.loads(PRE_PR_FILE.read_text())
    return table.get(f"{scale:g}")


def _bench_closures(scale: float) -> tuple[int, int, dict]:
    """(micro dim, chain dim, name -> (callable, timing kwargs)) for *scale*.

    One closure table serves every backend leg: the inputs are built once
    and each leg re-times the same callables under a different active
    backend (bit-identity means the work is identical by construction).
    """
    dim, chain_dim = _dims(scale)
    matrix = random_sparse(dim, dim, 0.01, seed=7)
    other = random_sparse(dim, dim, 0.005, seed=8)
    template = MNCSketch.from_matrix(matrix)
    h_a = MNCSketch.from_matrix(matrix)
    h_b = MNCSketch.from_matrix(other)
    prop_rng = np.random.default_rng(99)
    sketches = _chain_sketches(chain_dim, CHAIN_LENGTH)
    fns: dict[str, tuple] = {
        "sketch_build_from_matrix": (lambda: MNCSketch.from_matrix(matrix), {}),
        "sketch_construct": (_construct_fast(template), {}),
        "sketch_construct_validated_eager": (
            _construct_validated_eager(template), {}
        ),
        "alg1_estimate": (lambda: estimate_product_nnz(h_a, h_b), {}),
        # Extensions disabled forces the generic density-map path (the
        # log1p/tree-sum kernel) on every lane — the Algorithm 1 case the
        # compiled backend accelerates the most.
        "alg1_generic": (
            lambda: estimate_product_nnz(h_a, h_b, use_extensions=False), {}
        ),
        "propagate": (lambda: propagate_product(h_a, h_b, rng=prop_rng), {}),
        "chain_dp20": (
            lambda: optimize_chain_sparse(
                sketches, rng=np.random.default_rng(0), workers=1
            ),
            {"min_seconds": 0.2, "rounds": 3},
        ),
    }
    return dim, chain_dim, fns


def _extra_backends() -> list[str]:
    """Non-reference backends to re-time (``REPRO_BENCH_BACKENDS`` override).

    Defaults to ``numba`` when importable. The interpreted ``python``
    backend is never a default: it is orders of magnitude too slow for
    ``chain_dp20`` (opt in explicitly if you want its numbers).
    """
    env = os.environ.get("REPRO_BENCH_BACKENDS")
    if env is not None:
        return [name for name in (p.strip() for p in env.split(",")) if name]
    return ["numba"] if backends.numba_importable() else []


def run_hotpath_benchmark(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    dim, chain_dim, fns = _bench_closures(scale)

    # The headline numbers (and the committed baselines they are compared
    # against) are always the numpy reference backend, regardless of what
    # REPRO_BACKEND says — backend legs get their own payload section.
    with backends.use_backend("numpy"):
        backends.warmup()
        benches: dict[str, dict] = {
            name: _time_per_op(fn, **opts) for name, (fn, opts) in fns.items()
        }

    payload: dict = {
        "scale": scale,
        "dims": {"micro": dim, "chain": chain_dim, "chain_length": CHAIN_LENGTH},
        "calibration_seconds": _calibration_seconds(),
        "backend_reference": "numpy",
        "benchmarks": benches,
        "construct_speedup_within_run": (
            benches["sketch_construct_validated_eager"]["seconds_per_op"]
            / benches["sketch_construct"]["seconds_per_op"]
        ),
    }

    backend_results: dict[str, dict] = {}
    for name in _extra_backends():
        with backends.use_backend(name):
            jit_seconds = backends.warmup()
            timed = {
                bench: _time_per_op(fns[bench][0], **fns[bench][1])
                for bench in BACKEND_BENCHES
            }
        backend_results[name] = {
            "jit_compile_seconds": jit_seconds,
            "benchmarks": timed,
            "speedup_vs_numpy": {
                bench: (
                    benches[bench]["seconds_per_op"]
                    / timed[bench]["seconds_per_op"]
                )
                for bench in BACKEND_BENCHES
            },
        }
    if backend_results:
        payload["backends"] = backend_results

    try:
        from repro.core.hotpath import HOTPATH
        payload["hotpath_counters"] = HOTPATH.snapshot()
    except ImportError:  # pragma: no cover - pre-overhaul checkouts
        pass

    pre_pr = _load_pre_pr(scale)
    if pre_pr is not None:
        speedups = {}
        for name, result in benches.items():
            old = pre_pr.get("benchmarks", {}).get(name, {}).get("seconds_per_op")
            if old:
                speedups[name] = old / result["seconds_per_op"]
        payload["pre_pr"] = {
            "calibration_seconds": pre_pr.get("calibration_seconds"),
            "speedups": speedups,
        }
    return payload


def _render(payload: dict) -> str:
    lines = [
        "hot-path microbenchmarks "
        f"(scale={payload['scale']:g}, dim={payload['dims']['micro']}, "
        f"chain {payload['dims']['chain_length']}x{payload['dims']['chain']})",
        f"{'bench':<36}{'us/op':>12}{'speedup vs pre-PR':>20}",
    ]
    speedups = payload.get("pre_pr", {}).get("speedups", {})
    for name, result in payload["benchmarks"].items():
        ratio = speedups.get(name)
        shown = f"{ratio:.2f}x" if ratio else "-"
        lines.append(
            f"{name:<36}{result['seconds_per_op'] * 1e6:>12.1f}{shown:>20}"
        )
    lines.append(
        f"{'(validated+eager)/trusted construct':<36}"
        f"{'':>12}{payload['construct_speedup_within_run']:>19.2f}x"
    )
    for backend_name, leg in payload.get("backends", {}).items():
        lines.append(
            f"backend={backend_name} "
            f"(jit compile {leg['jit_compile_seconds']:.3f}s)"
        )
        lines.append(f"{'bench':<36}{'us/op':>12}{'speedup vs numpy':>20}")
        for bench, result in leg["benchmarks"].items():
            ratio = leg["speedup_vs_numpy"][bench]
            lines.append(
                f"{bench:<36}{result['seconds_per_op'] * 1e6:>12.1f}"
                f"{f'{ratio:.2f}x':>20}"
            )
    return "\n".join(lines)


def _enforce(payload: dict) -> None:
    speedups = payload.get("pre_pr", {}).get("speedups", {})
    for name, target in MIN_SPEEDUP.items():
        achieved = speedups.get(name)
        assert achieved is not None, (
            f"no pre-PR baseline for {name} at scale {payload['scale']:g}"
        )
        assert achieved >= target, (
            f"{name}: {achieved:.2f}x speedup below the {target:.1f}x target"
        )


def _enforce_backend(payload: dict) -> None:
    """REPRO_BENCH_ENFORCE_BACKEND=1: numba must beat numpy by its targets."""
    leg = payload.get("backends", {}).get("numba")
    assert leg is not None, (
        "REPRO_BENCH_ENFORCE_BACKEND=1 but no numba leg ran "
        "(is numba installed / listed in REPRO_BENCH_BACKENDS?)"
    )
    for bench, target in MIN_BACKEND_SPEEDUP.items():
        achieved = leg["speedup_vs_numpy"][bench]
        assert achieved >= target, (
            f"numba {bench}: {achieved:.2f}x over numpy, below the "
            f"{target:.1f}x target"
        )


def _run_and_report() -> dict:
    payload = run_hotpath_benchmark()
    write_bench_json("hotpath", payload)
    print(_render(payload))
    if os.environ.get("REPRO_BENCH_ENFORCE_HOTPATH") == "1":
        _enforce(payload)
    if os.environ.get("REPRO_BENCH_ENFORCE_BACKEND") == "1":
        _enforce_backend(payload)
    return payload


def test_hotpath_benchmark():
    _run_and_report()


if __name__ == "__main__":
    _run_and_report()
