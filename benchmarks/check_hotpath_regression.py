"""Tolerance-based hot-path perf-regression checker (docs/PERFORMANCE.md).

Compares the latest ``benchmarks/results/BENCH_hotpath.json`` (produced by
``bench_hotpath.py``) against the committed baseline
``benchmarks/baselines/hotpath_baseline.json``. Raw seconds are never
compared across machines directly: both files carry the time of a fixed
numpy calibration workload, and every baseline number is rescaled by the
``current_calibration / baseline_calibration`` ratio first.

A benchmark regresses when::

    current_seconds > tolerance * baseline_seconds * calibration_ratio

with ``tolerance`` defaulting to 2.0 (override with ``--tolerance`` or the
``REPRO_PERF_TOLERANCE`` environment variable). The generous default keeps
CI runners' noise out of the signal while still catching the kind of 2x+
regressions this harness exists for (accidentally re-validating per
construction, re-materializing summaries, allocation regressions).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    python benchmarks/check_hotpath_regression.py
    python benchmarks/check_hotpath_regression.py --update-baseline

The baseline records its scale; a scale mismatch is an error (timings at
different input sizes are not comparable), so CI pins ``REPRO_BENCH_SCALE``
for both the run and the committed baseline.

Top-level ``benchmarks`` numbers are always the numpy reference backend.
Kernel-backend legs (e.g. numba) are compared under per-backend keys in
the baseline's ``backends`` section; a backend present in the baseline
but absent from the current run is skipped, not failed, so numpy-only
machines can still check the reference numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_FILE = BENCH_DIR / "results" / "BENCH_hotpath.json"
BASELINE_FILE = BENCH_DIR / "baselines" / "hotpath_baseline.json"

DEFAULT_TOLERANCE = 2.0


def _load(path: Path, label: str) -> dict:
    if not path.exists():
        raise SystemExit(
            f"error: {label} not found at {path} "
            f"(run benchmarks/bench_hotpath.py first)"
        )
    return json.loads(path.read_text())


def _strip(benchmarks: dict) -> dict:
    return {
        name: {"seconds_per_op": result["seconds_per_op"]}
        for name, result in benchmarks.items()
    }


def update_baseline() -> int:
    """Write/merge the committed baseline from the latest results.

    Top-level ``benchmarks`` is always the numpy reference backend (the
    format bench_metrics.py also reads). Per-backend numbers live under a
    ``backends`` key; backends absent from the latest run (e.g. updating
    on a machine without numba) keep their previously committed entries.
    """
    payload = _load(RESULTS_FILE, "benchmark results")
    backends = {}
    if BASELINE_FILE.exists():
        old = json.loads(BASELINE_FILE.read_text())
        if f"{old.get('scale', payload['scale']):g}" == f"{payload['scale']:g}":
            backends = old.get("backends", {})
    for name, leg in payload.get("backends", {}).items():
        backends[name] = _strip(leg["benchmarks"])
    baseline = {
        "scale": payload["scale"],
        "dims": payload["dims"],
        "calibration_seconds": payload["calibration_seconds"],
        "benchmarks": _strip(payload["benchmarks"]),
    }
    if backends:
        baseline["backends"] = backends
    BASELINE_FILE.parent.mkdir(exist_ok=True)
    BASELINE_FILE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"baseline updated: {BASELINE_FILE} (scale={baseline['scale']:g})")
    return 0


def check(tolerance: float) -> int:
    payload = _load(RESULTS_FILE, "benchmark results")
    baseline = _load(BASELINE_FILE, "committed baseline")

    if f"{payload['scale']:g}" != f"{baseline['scale']:g}":
        raise SystemExit(
            f"error: scale mismatch — results at {payload['scale']:g}, "
            f"baseline at {baseline['scale']:g}; timings are not comparable"
        )

    calibration_ratio = (
        payload["calibration_seconds"] / baseline["calibration_seconds"]
    )
    print(
        f"hot-path regression check (scale={payload['scale']:g}, "
        f"tolerance={tolerance:g}x, calibration ratio "
        f"{calibration_ratio:.2f}x)"
    )
    print(f"{'bench':<36}{'baseline us':>14}{'current us':>14}{'ratio':>9}")

    failures = []

    def compare(base_benchmarks: dict, current_benchmarks: dict, prefix: str):
        for name, base in sorted(base_benchmarks.items()):
            label = f"{prefix}{name}"
            current = current_benchmarks.get(name)
            if current is None:
                failures.append(f"{label}: missing from current results")
                continue
            allowed = base["seconds_per_op"] * calibration_ratio
            ratio = current["seconds_per_op"] / allowed
            flag = "  FAIL" if ratio > tolerance else ""
            print(
                f"{label:<36}{allowed * 1e6:>14.1f}"
                f"{current['seconds_per_op'] * 1e6:>14.1f}{ratio:>8.2f}x{flag}"
            )
            if ratio > tolerance:
                failures.append(
                    f"{label}: {ratio:.2f}x the machine-normalized baseline "
                    f"(tolerance {tolerance:g}x)"
                )

    compare(baseline["benchmarks"], payload["benchmarks"], "")
    for backend_name, base_benchmarks in sorted(
        baseline.get("backends", {}).items()
    ):
        leg = payload.get("backends", {}).get(backend_name)
        if leg is None:
            # Baselines may carry backends this machine can't run (e.g. a
            # numba baseline checked on a numpy-only runner) — not a
            # regression, the dedicated CI leg covers them.
            print(f"{backend_name}/*: skipped (backend not in current run)")
            continue
        compare(base_benchmarks, leg["benchmarks"], f"{backend_name}/")

    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION {failure}")
        return 1
    print("ok: no hot-path regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed slowdown factor vs the normalized baseline "
        "(default 2.0, env REPRO_PERF_TOLERANCE)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the committed baseline with the latest results",
    )
    args = parser.parse_args(argv)
    if args.update_baseline:
        return update_baseline()
    return check(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
