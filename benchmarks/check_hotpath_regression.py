"""Tolerance-based hot-path perf-regression checker (docs/PERFORMANCE.md).

Compares the latest ``benchmarks/results/BENCH_hotpath.json`` (produced by
``bench_hotpath.py``) against the committed baseline
``benchmarks/baselines/hotpath_baseline.json``. Raw seconds are never
compared across machines directly: both files carry the time of a fixed
numpy calibration workload, and every baseline number is rescaled by the
``current_calibration / baseline_calibration`` ratio first.

A benchmark regresses when::

    current_seconds > tolerance * baseline_seconds * calibration_ratio

with ``tolerance`` defaulting to 2.0 (override with ``--tolerance`` or the
``REPRO_PERF_TOLERANCE`` environment variable). The generous default keeps
CI runners' noise out of the signal while still catching the kind of 2x+
regressions this harness exists for (accidentally re-validating per
construction, re-materializing summaries, allocation regressions).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    python benchmarks/check_hotpath_regression.py
    python benchmarks/check_hotpath_regression.py --update-baseline

The baseline records its scale; a scale mismatch is an error (timings at
different input sizes are not comparable), so CI pins ``REPRO_BENCH_SCALE``
for both the run and the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_FILE = BENCH_DIR / "results" / "BENCH_hotpath.json"
BASELINE_FILE = BENCH_DIR / "baselines" / "hotpath_baseline.json"

DEFAULT_TOLERANCE = 2.0


def _load(path: Path, label: str) -> dict:
    if not path.exists():
        raise SystemExit(
            f"error: {label} not found at {path} "
            f"(run benchmarks/bench_hotpath.py first)"
        )
    return json.loads(path.read_text())


def update_baseline() -> int:
    payload = _load(RESULTS_FILE, "benchmark results")
    baseline = {
        "scale": payload["scale"],
        "dims": payload["dims"],
        "calibration_seconds": payload["calibration_seconds"],
        "benchmarks": {
            name: {"seconds_per_op": result["seconds_per_op"]}
            for name, result in payload["benchmarks"].items()
        },
    }
    BASELINE_FILE.parent.mkdir(exist_ok=True)
    BASELINE_FILE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"baseline updated: {BASELINE_FILE} (scale={baseline['scale']:g})")
    return 0


def check(tolerance: float) -> int:
    payload = _load(RESULTS_FILE, "benchmark results")
    baseline = _load(BASELINE_FILE, "committed baseline")

    if f"{payload['scale']:g}" != f"{baseline['scale']:g}":
        raise SystemExit(
            f"error: scale mismatch — results at {payload['scale']:g}, "
            f"baseline at {baseline['scale']:g}; timings are not comparable"
        )

    calibration_ratio = (
        payload["calibration_seconds"] / baseline["calibration_seconds"]
    )
    print(
        f"hot-path regression check (scale={payload['scale']:g}, "
        f"tolerance={tolerance:g}x, calibration ratio "
        f"{calibration_ratio:.2f}x)"
    )
    print(f"{'bench':<36}{'baseline us':>14}{'current us':>14}{'ratio':>9}")

    failures = []
    for name, base in sorted(baseline["benchmarks"].items()):
        current = payload["benchmarks"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current results")
            continue
        allowed = base["seconds_per_op"] * calibration_ratio
        ratio = current["seconds_per_op"] / allowed
        flag = "  FAIL" if ratio > tolerance else ""
        print(
            f"{name:<36}{allowed * 1e6:>14.1f}"
            f"{current['seconds_per_op'] * 1e6:>14.1f}{ratio:>8.2f}x{flag}"
        )
        if ratio > tolerance:
            failures.append(
                f"{name}: {ratio:.2f}x the machine-normalized baseline "
                f"(tolerance {tolerance:g}x)"
            )

    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION {failure}")
        return 1
    print("ok: no hot-path regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed slowdown factor vs the normalized baseline "
        "(default 2.0, env REPRO_PERF_TOLERANCE)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the committed baseline with the latest results",
    )
    args = parser.parse_args(argv)
    if args.update_baseline:
        return update_baseline()
    return check(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
