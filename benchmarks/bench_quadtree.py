"""Dynamic density map (quad tree) vs fixed-block density maps.

Evaluates the paper's Section 2.2 design question empirically: the
adaptive map's accuracy and synopsis size against fixed maps at coarse
(256) and fine (16) block sizes, on block-structured and Covertype-style
inputs plus B-case products.
"""

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B1.1", "B2.2", "B2.3", "B2.4"]
VARIANTS = [
    ("DMap b=256", "density_map", {"block_size": 256}),
    ("DMap b=16", "density_map", {"block_size": 16}),
    ("QTree", "quadtree_map", {"leaf_nnz": 64, "min_block": 16}),
]


@pytest.mark.parametrize("label,name,kwargs", VARIANTS)
def test_estimation_time(benchmark, scale, label, name, kwargs):
    root = get_use_case("B2.4").build(scale=scale, seed=0)
    estimator = make_estimator(name, **kwargs)
    benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["variant"] = label


def test_print_quadtree_comparison(benchmark, scale):
    def sweep():
        accuracy_rows = []
        size_rows = []
        for case_id in CASE_IDS:
            root = get_use_case(case_id).build(scale=scale, seed=0)
            truth = true_nnz_of(root)
            row = [case_id]
            sizes = [case_id]
            for label, name, kwargs in VARIANTS:
                estimator = make_estimator(name, **kwargs)
                estimate = estimate_root_nnz(root, estimator)
                row.append(relative_error(truth, estimate))
                leaf = root.leaves()[0]
                sizes.append(estimator.build(leaf.matrix).size_bytes())
            accuracy_rows.append(row)
            size_rows.append(sizes)
        return accuracy_rows, size_rows

    accuracy_rows, size_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    labels = [label for label, _, _ in VARIANTS]
    table = (
        simple_table(["Case"] + labels, accuracy_rows,
                     title=f"Quad-tree vs fixed density maps: relative error (scale={scale})")
        + "\n\n"
        + simple_table(["Case"] + [f"{l} bytes" for l in labels], size_rows,
                       title="Leaf synopsis size [bytes]")
    )
    write_result("quadtree_comparison", table)

    errors = {
        row[0]: dict(zip(labels, row[1:])) for row in accuracy_rows
    }
    sizes = {row[0]: dict(zip(labels, row[1:])) for row in size_rows}
    # The adaptive map should be at least as accurate as the coarse fixed
    # map on the structured cases...
    for case_id in CASE_IDS:
        assert errors[case_id]["QTree"] <= errors[case_id]["DMap b=256"] * 1.05, case_id
    # ...while staying smaller than the fine fixed map on the ultra-sparse
    # NLP input (the Section 2.2 space complaint about fixed defaults).
    assert sizes["B1.1"]["QTree"] < sizes["B1.1"]["DMap b=16"]