"""Random-workload stress test (extension beyond the fifteen B-cases).

Generates seeded random expression DAGs mixing products, element-wise
operations, and reorganizations over structured leaves, and compares
estimators on geometric-mean relative error. Guards against overfitting
the fifteen hand-picked use cases: MNC's advantage must generalize.
"""

import math

import pytest

from conftest import write_result
from repro.sparsest.report import simple_table
from repro.sparsest.workload import WorkloadConfig, WorkloadGenerator, workload_errors

ESTIMATORS = ["meta_wc", "meta_ac", "density_map", "mnc_basic", "mnc"]
BATCH = 20


def _geo_mean(values):
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return math.inf
    return math.exp(sum(math.log(value) for value in finite) / len(finite))


def _expressions(structured):
    if structured:
        config = WorkloadConfig(
            max_depth=4,
            leaf_kinds=("single_nnz", "power_law", "permutation", "diagonal"),
        )
    else:
        config = WorkloadConfig(max_depth=4, leaf_kinds=("uniform",))
    return WorkloadGenerator(config, seed=99).batch(BATCH)


@pytest.mark.parametrize("structured", [True, False], ids=["structured", "uniform"])
def test_workload_estimation_time(benchmark, structured):
    expressions = _expressions(structured)
    benchmark.pedantic(
        lambda: workload_errors(expressions[:5], ["mnc"]), rounds=1, iterations=1
    )


def test_print_random_workloads(benchmark):
    def sweep():
        rows = []
        raw = {}
        for structured, label in ((True, "structured"), (False, "uniform")):
            expressions = _expressions(structured)
            errors = workload_errors(expressions, ESTIMATORS)
            raw[label] = errors
            for name in ESTIMATORS:
                values = errors[name]
                infinities = sum(1 for value in values if math.isinf(value))
                rows.append([
                    label, name, len(values), _geo_mean(values),
                    max((v for v in values if math.isfinite(v)), default=math.inf),
                    infinities,
                ])
        return rows, raw

    rows, raw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["workload", "estimator", "DAGs", "geo-mean err", "worst finite", "inf errors"],
        rows,
        title=f"Random workloads: {BATCH} DAGs per family (depth <= 4)",
    )
    write_result("random_workloads", table)

    structured = {name: _geo_mean(raw["structured"][name]) for name in ESTIMATORS}
    uniform = {name: _geo_mean(raw["uniform"][name]) for name in ESTIMATORS}
    infinities = {
        name: sum(1 for v in raw["structured"][name] if math.isinf(v))
        for name in ESTIMATORS
    }
    # MNC's advantage generalizes: best geo-mean on structured workloads,
    # competitive (within noise of MetaAC) on uniform ones, and never
    # infinitely wrong where the metadata estimators are.
    assert structured["mnc"] <= min(
        structured["meta_ac"], structured["meta_wc"], structured["density_map"]
    ) * 1.02
    assert uniform["mnc"] <= uniform["meta_ac"] * 1.5
    assert infinities["mnc"] == 0
    # Full MNC and MNC Basic are close on random DAGs; the Theorem 3.2
    # bounds are sound for exact sketches but can occasionally mislead on
    # *propagated* (approximate) ones, so Basic may edge ahead by a few
    # percent here (see EXPERIMENTS.md).
    assert structured["mnc"] <= structured["mnc_basic"] * 1.10
