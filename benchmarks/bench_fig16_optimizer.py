"""Figure 16 / Appendix C: sparsity-aware matrix-chain optimization.

The paper's setup: a 20-matrix chain with dimensions cycling through
{10, 1e3, 1e4, 1e4, 1e3, 10, 1e4, 1, 1e4, 1e3} (twice) ending in 1, random
sparsity in [1e-4, 1] for every third matrix and 0.1 otherwise, and 100,000
random plans compared against the dense DP and the sparsity-aware DP.

Matrices at these dimensions need not be materialized: plan costing only
needs MNC sketches, which :meth:`MNCSketch.synthetic` draws directly from
the uniform-structure model (the paper notes estimation errors are
negligible under uniform non-zeros). Sparsities are drawn log-uniformly
from [1e-4, 1] so ultra-sparse matrices actually occur. The number of
random plans defaults to 500 and scales via REPRO_BENCH_PLANS.

Known deviation (see EXPERIMENTS.md): the dims bottlenecks (the 1-columns)
leave the dense DP closer to optimal in our instances (~1-3x) than the
paper's 99x; the plan-space spread and the sparse DP's optimality reproduce.
"""

import os

import numpy as np
import pytest

from conftest import write_result
from repro.core.sketch import MNCSketch
from repro.optimizer import (
    enumerate_random_plans,
    optimize_chain_dense,
    optimize_chain_sparse,
    plan_cost_estimated,
    plan_to_string,
)
from repro.sparsest.report import simple_table

#: The paper's exact dimension cycle.
DIMS_CYCLE = [10, 1_000, 10_000, 10_000, 1_000, 10, 10_000, 1, 10_000, 1_000]
CHAIN_SEED = 3  # instance with a visible dense-vs-sparse gap


def _chain_sketches(seed=CHAIN_SEED):
    rng = np.random.default_rng(seed)
    dims = DIMS_CYCLE * 2 + [1]
    sketches = []
    for index in range(20):
        m, n = dims[index], dims[index + 1]
        sparsity = 10.0 ** rng.uniform(-4, 0) if index % 3 == 0 else 0.1
        sketches.append(MNCSketch.synthetic(m, n, sparsity, rng))
    return sketches


def _plan_count():
    return int(os.environ.get("REPRO_BENCH_PLANS", "500"))


def test_sparse_dp_time(benchmark):
    sketches = _chain_sketches()
    solution = benchmark.pedantic(
        lambda: optimize_chain_sparse(sketches, rng=1), rounds=2, iterations=1
    )
    assert solution.cost > 0


def test_dense_dp_time(benchmark):
    shapes = [h.shape for h in _chain_sketches()]
    benchmark.pedantic(lambda: optimize_chain_dense(shapes), rounds=3, iterations=1)


def test_print_fig16(benchmark):
    def run():
        sketches = _chain_sketches()
        dense_solution = optimize_chain_dense([h.shape for h in sketches])
        sparse_solution = optimize_chain_sparse(sketches, rng=2)
        dense_cost = plan_cost_estimated(dense_solution.plan, sketches, rng=3)
        sparse_cost = plan_cost_estimated(sparse_solution.plan, sketches, rng=3)
        plans = enumerate_random_plans(len(sketches), _plan_count(), rng=4)
        random_costs = np.array([
            plan_cost_estimated(plan, sketches, rng=5) for plan in plans
        ])
        return dense_solution, sparse_solution, dense_cost, sparse_cost, random_costs

    dense_solution, sparse_solution, dense_cost, sparse_cost, random_costs = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    best = min(float(random_costs.min()), sparse_cost, dense_cost)
    rows = [
        ["sparse DP plan", sparse_cost, sparse_cost / best],
        ["dense DP plan", dense_cost, dense_cost / best],
        ["best random", float(random_costs.min()), float(random_costs.min()) / best],
        ["median random", float(np.median(random_costs)),
         float(np.median(random_costs)) / best],
        ["p90 random", float(np.percentile(random_costs, 90)),
         float(np.percentile(random_costs, 90)) / best],
        ["worst random", float(random_costs.max()), float(random_costs.max()) / best],
    ]
    table = simple_table(
        ["Plan", "sparse FLOPs", "slowdown vs best"], rows,
        title=(
            f"Figure 16: {_plan_count()} random plans vs dense/sparse DP "
            "(20-matrix chain, paper dims)\n"
            f"sparse plan: {plan_to_string(sparse_solution.plan)}"
        ),
    )
    write_result("fig16_optimizer", table)

    # Paper claims we reproduce: a worst/best spread of many orders of
    # magnitude; the sparse DP finds the optimal plan; the dense DP does not.
    assert random_costs.max() / best > 1e3
    assert sparse_cost <= best * 1.05
    assert sparse_cost <= float(random_costs.min())
    assert dense_cost >= sparse_cost
