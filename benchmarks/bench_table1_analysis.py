"""Table 1: analysis of sparsity estimators (space, time, chains, bias).

The complexity columns are analytical; this benchmark verifies them
empirically by timing synopsis construction at two sizes and checking the
growth, and times each estimator's build as the pytest-benchmark metric.
"""

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.matrix.random import random_sparse
from repro.sparsest.report import simple_table

TABLE1_ROWS = [
    ("MetaAC",  "O(1)",              "O(1)",                 "yes", "-"),
    ("MetaWC",  "O(1)",              "O(1)",                 "yes", "over (>= sC)"),
    ("Bitset",  "O(mn + nl + ml)",   "O(mnl)",               "yes", "-"),
    ("DMap",    "O((mn+nl+ml)/b^2)", "O(mnl/b^3)",           "yes", "-"),
    ("Sample",  "O(|S|)",            "O(|S| (m + l))",       "no",  "under (<= sC)"),
    ("LGraph",  "O(rd + nnz(A,B))",  "O(r (d + nnz(A,B)))",  "yes", "-"),
    ("MNC",     "O(d)",              "O(d + nnz(A,B))",      "yes", "-"),
]

BUILDERS = {
    "MetaAC": lambda: make_estimator("meta_ac"),
    "Bitset": lambda: make_estimator("bitset"),
    "DMap": lambda: make_estimator("density_map", block_size=64),
    "Sample": lambda: make_estimator("sampling"),
    "LGraph": lambda: make_estimator("layered_graph"),
    "MNC": lambda: make_estimator("mnc"),
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_build_time(benchmark, name):
    """Synopsis construction time per estimator (1000x1000, s=0.05)."""
    matrix = random_sparse(1000, 1000, 0.05, seed=1)
    estimator = BUILDERS[name]()
    benchmark.pedantic(lambda: estimator.build(matrix), rounds=3, iterations=1)
    benchmark.extra_info["estimator"] = name


def test_print_table1(benchmark):
    """Render Table 1 and empirically confirm the space column ordering."""
    small = random_sparse(500, 500, 0.05, seed=2)
    large = random_sparse(2000, 2000, 0.05, seed=3)

    def measure():
        sizes = {}
        for name, factory in BUILDERS.items():
            estimator = factory()
            sizes[name] = (
                estimator.build(small).size_bytes(),
                estimator.build(large).size_bytes(),
            )
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Empirical growth factors (large is 4x the dimension, 16x the cells).
    growth = {name: l / max(s, 1) for name, (s, l) in sizes.items()}
    assert growth["MetaAC"] == 1.0  # O(1)
    assert 3.0 <= growth["MNC"] <= 5.0  # O(d): ~4x
    assert 10.0 <= growth["Bitset"] <= 20.0  # O(mn): ~16x
    assert 10.0 <= growth["DMap"] <= 20.0  # O(mn/b^2): ~16x

    rows = [
        list(row) + [f"{sizes.get(row[0], ('-', '-'))[1]}"]
        for row in TABLE1_ROWS
    ]
    table = simple_table(
        ["Estimator", "Space", "Time", "Chains", "Bias", "bytes@2Kx2K s=0.05"],
        rows,
        title="Table 1: Analysis of Existing Sparsity Estimators",
    )
    write_result("table1_analysis", table)
