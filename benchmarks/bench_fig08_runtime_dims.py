"""Figure 8: construction and estimation runtime for varying common
dimension at a fixed non-zero count.

The paper fixes nnz = 1M per matrix and output dims 10K x 10K while the
common dimension sweeps 1K..1M (sparsity 0.1..1e-4). Scaled to laptop
size: output 1000 x 1000, nnz = 100K, common dimension 1K..100K.
"""

import time

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.matrix.ops import matmul
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.sparsest.report import simple_table

OUT = 1000
SWEEP = [(1_000, 0.1), (10_000, 0.01), (100_000, 0.001)]
ESTIMATORS = ["sampling", "mnc", "density_map", "bitset", "layered_graph"]


def _pair(common):
    sparsity = 100_000 / (OUT * common)
    a = random_sparse(OUT, common, sparsity, seed=81)
    b = random_sparse(common, OUT, sparsity, seed=82)
    return a, b


@pytest.mark.parametrize("common,sparsity", SWEEP)
@pytest.mark.parametrize("name", ESTIMATORS)
def test_total_estimation_time(benchmark, name, common, sparsity):
    """Figure 8(a): total estimation time vs common dimension."""
    a, b = _pair(common)
    estimator = make_estimator(name)

    def run():
        sa, sb = estimator.build(a), estimator.build(b)
        return estimator.estimate_nnz(Op.MATMUL, [sa, sb])

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["common_dimension"] = common
    benchmark.extra_info["estimator"] = name


def test_print_fig8_tables(benchmark):
    """Render the Figure 8 panels as tables."""

    def sweep():
        rows_total, rows_construct, rows_estimate = [], [], []
        for common, sparsity in SWEEP:
            a, b = _pair(common)
            start = time.perf_counter()
            matmul(a, b)
            mm_time = time.perf_counter() - start
            label = f"{common}/{sparsity:g}"
            total_row, construct_row, estimate_row = [label], [label], [label]
            for name in ESTIMATORS:
                estimator = make_estimator(name)
                start = time.perf_counter()
                sa, sb = estimator.build(a), estimator.build(b)
                construct = time.perf_counter() - start
                start = time.perf_counter()
                estimator.estimate_nnz(Op.MATMUL, [sa, sb])
                estimate = time.perf_counter() - start
                total_row.append(construct + estimate)
                construct_row.append(construct)
                estimate_row.append(estimate)
            total_row.append(mm_time)
            rows_total.append(total_row)
            rows_construct.append(construct_row)
            rows_estimate.append(estimate_row)
        return rows_total, rows_construct, rows_estimate

    rows_total, rows_construct, rows_estimate = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    headers = ["dim/sparsity"] + [make_estimator(n).name for n in ESTIMATORS]
    tables = [
        simple_table(headers + ["MM (true)"], rows_total,
                     title=f"Figure 8(a): total estimation time [s], output {OUT}x{OUT}, nnz=100K"),
        simple_table(headers, rows_construct, title="Figure 8(b): construction time [s]"),
        simple_table(headers, rows_estimate, title="Figure 8(c): estimation time [s]"),
    ]
    write_result("fig08_runtime_dims", "\n\n".join(tables))

    # Paper shape: the bitset's cost explodes with the common dimension
    # while MNC stays bounded by the (constant) non-zero count.
    bitset_index = 1 + ESTIMATORS.index("bitset")
    mnc_index = 1 + ESTIMATORS.index("mnc")
    widest = rows_total[-1]
    assert widest[mnc_index] < widest[bitset_index]
