"""Cold-vs-warm estimation through the sketch catalog (docs/CATALOG.md).

The serving scenario the catalog targets: matrices are registered once,
then structurally identical expressions are estimated over and over (an
optimizer enumerating plans, repeated requests against the same inputs).
Cold runs pay full sketch construction and propagation; warm runs are pure
fingerprint lookups against the memoized root estimate.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_catalog.py``) or
under pytest; either way it emits ``benchmarks/results/BENCH_catalog.json``
with the cold/warm timings and the speedup, and fails if the warm path is
not at least 10x faster than cold.
"""

from __future__ import annotations

import statistics
import time

from conftest import bench_scale, write_bench_json
from repro.catalog import EstimationService
from repro.ir.nodes import leaf, matmul
from repro.matrix.random import random_sparse

#: Acceptance threshold: warm (memoized) estimates must beat cold by this.
MIN_SPEEDUP = 10.0

COLD_ROUNDS = 5
WARM_ROUNDS = 50


def _chain_matrices(scale: float):
    """A matmul chain at benchmark scale (~1k-square at the default 0.2)."""
    side = max(200, int(5000 * scale))
    seeds = range(6)
    dims = [side + 37 * i for i in range(len(seeds) + 1)]
    return [
        random_sparse(dims[i], dims[i + 1], 0.01, seed=seed)
        for i, seed in enumerate(seeds)
    ]


def _build_expr(matrices):
    root = leaf(matrices[0])
    for matrix in matrices[1:]:
        root = matmul(root, leaf(matrix))
    return root


def run_catalog_benchmark(scale: float | None = None) -> dict:
    """Measure cold and warm estimate latency; returns the JSON payload."""
    scale = bench_scale() if scale is None else scale
    matrices = _chain_matrices(scale)

    cold_times = []
    for _ in range(COLD_ROUNDS):
        service = EstimationService()  # fresh caches: a true cold start
        start = time.perf_counter()
        cold_result = service.estimate(_build_expr(matrices))
        cold_times.append(time.perf_counter() - start)

    service = EstimationService()
    service.estimate(_build_expr(matrices))  # populate the catalog once
    warm_times = []
    for _ in range(WARM_ROUNDS):
        start = time.perf_counter()
        warm_result = service.estimate(_build_expr(matrices))
        warm_times.append(time.perf_counter() - start)

    cold_seconds = statistics.median(cold_times)
    warm_seconds = statistics.median(warm_times)
    assert warm_result["cached"]
    assert warm_result["nnz"] == cold_result["nnz"]
    return {
        "benchmark": "catalog_cold_vs_warm",
        "scale": scale,
        "chain_length": len(matrices),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "estimated_nnz": cold_result["nnz"],
        "service_stats": service.stats(),
    }


def test_warm_catalog_at_least_10x_faster():
    payload = run_catalog_benchmark()
    write_bench_json("catalog", payload)
    print(
        f"catalog cold {payload['cold_seconds'] * 1e3:.2f} ms, "
        f"warm {payload['warm_seconds'] * 1e6:.1f} us, "
        f"speedup {payload['speedup']:.0f}x"
    )
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"warm catalog estimate only {payload['speedup']:.1f}x faster than "
        f"cold (need >= {MIN_SPEEDUP:.0f}x)"
    )


if __name__ == "__main__":
    test_warm_catalog_at_least_10x_faster()
