"""Estimation server throughput + bit-identity (docs/SERVING.md).

Boots a real :class:`EstimationServer` on a loopback port and drives it
over actual HTTP via :class:`ServeClient` — the same transport production
clients use — measuring the two properties the serving layer promises:

- **Bit-identity, always enforced.** Every server answer (single
  estimates, batches, chain plans, and estimates over a shard-merged
  registration) must be bit-identical to a direct
  :meth:`EstimationService.submit` fed the same registrations in the same
  request order. Checked at every worker count in ``WORKER_COUNTS`` —
  worker fan-out must not perturb answers.
- **Warm throughput >= 10,000 estimates/sec.** Once the memo is hot, the
  server must sustain at least ``MIN_WARM_THROUGHPUT`` estimates per
  second through large batch POSTs (batching amortizes HTTP round-trips;
  single-request p50/p95 latency is reported alongside).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
under pytest; either way it emits
``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_scale, write_bench_json
from repro.catalog.service import EstimationService, ServiceRequest
from repro.catalog.sharded import ShardedSketchStore
from repro.matrix.random import random_sparse
from repro.serve import EstimationServer, MatrixRegistry, ServeClient, start_server_thread
from repro.serve.protocol import decode_expr, encode_chain_solution

#: Warm estimates/second the server must sustain through batch POSTs.
MIN_WARM_THROUGHPUT = 10_000.0

#: Worker counts at which bit-identity is asserted.
WORKER_COUNTS = (1, 2)

#: Expressions per batch POST on the warm path.
BATCH_SIZE = 256

CHAIN_SEED = 17


def _dataset(scale: float):
    """Matrices sized by the benchmark scale; W arrives as row shards."""
    side = max(24, int(200 * scale))
    x = random_sparse(side, side, 0.05, seed=31)
    w = random_sparse(side, side, 0.08, seed=32)
    v = random_sparse(side, side, 0.1, seed=33)
    return x, w, v


def _wire_exprs():
    matmul_xw = {"op": "matmul", "inputs": [{"ref": "X"}, {"ref": "W"}]}
    return [
        matmul_xw,
        {"ref": "X"},
        {"op": "transpose", "inputs": [matmul_xw]},
        {"op": "matmul", "inputs": [matmul_xw, {"ref": "V"}]},
        {"op": "ewise_mult", "inputs": [{"ref": "X"}, {"ref": "W"}]},
    ]


def _register_all(client: ServeClient, x, w, v) -> None:
    half = w.shape[0] // 2
    client.register("X", x)
    # W lands as out-of-order row shards: the ingest-merge path is part of
    # the identity contract, not just the happy path.
    client.register_partitioned(
        "W", [w[half:], w[:half]], axis=0, indices=[1, 0]
    )
    client.register("V", v)


def _direct_service(x, w, v) -> tuple[EstimationService, MatrixRegistry]:
    service = EstimationService()
    registry = MatrixRegistry(service)
    half = w.shape[0] // 2
    registry.register("X", x)
    registry.register_partitioned(
        "W", [w[half:], w[:half]], axis=0, indices=[1, 0]
    )
    registry.register("V", v)
    return service, registry


def _identity_pass(client: ServeClient, x, w, v, workers: int) -> dict:
    """Replay the same request sequence against the server and a direct
    service; every field must match exactly."""
    direct, registry = _direct_service(x, w, v)
    wires = _wire_exprs()
    mismatches = []

    for wire in wires + wires:  # second lap replays warm
        served = client.estimate(wire)
        expected = direct.submit(
            ServiceRequest.estimate(decode_expr(wire, registry.resolve))
        )
        for field in ("nnz", "sparsity", "fingerprint", "cached"):
            if served[field] != expected[field]:
                mismatches.append((wire, field, served[field], expected[field]))

    served_batch = client.estimate_batch(wires, workers=workers)
    expected_batch = direct.submit(ServiceRequest.batch(
        [decode_expr(wire, registry.resolve) for wire in wires],
        workers=workers,
    ))
    for wire, got, want in zip(wires, served_batch, expected_batch):
        for field in ("nnz", "sparsity", "fingerprint"):
            if got[field] != want[field]:
                mismatches.append((wire, f"batch.{field}", got[field], want[field]))

    served_chain = client.optimize_chain(["X", "W", "V"], seed=CHAIN_SEED,
                                         workers=workers)
    expected_chain = encode_chain_solution(direct.submit(ServiceRequest.chain(
        [registry.matrix(name) for name in ("X", "W", "V")],
        rng=np.random.default_rng(CHAIN_SEED),
        workers=workers,
    )))
    if served_chain["plan"] != expected_chain["plan"]:
        mismatches.append(("chain", "plan", served_chain["plan"],
                           expected_chain["plan"]))
    if served_chain["cost"] != expected_chain["cost"]:
        mismatches.append(("chain", "cost", served_chain["cost"],
                           expected_chain["cost"]))

    return {
        "workers": workers,
        "requests": 2 * len(wires) + len(wires) + 1,
        "bit_identical": not mismatches,
        "mismatches": [
            {"request": str(w_), "field": f, "served": s, "direct": d}
            for w_, f, s, d in mismatches[:10]
        ],
    }


def _throughput_pass(client: ServeClient, scale: float) -> dict:
    """Warm-path throughput via batch POSTs + single-request latency."""
    wires = _wire_exprs()
    batch = [wires[i % len(wires)] for i in range(BATCH_SIZE)]
    client.estimate_batch(batch)  # prime the memo + parse cache

    target_batches = max(4, int(40 * scale))
    done = 0
    started = time.perf_counter()
    for _ in range(target_batches):
        done += len(client.estimate_batch(batch))
    elapsed = time.perf_counter() - started
    throughput = done / elapsed if elapsed else 0.0

    latencies = []
    for i in range(max(50, int(400 * scale))):
        t0 = time.perf_counter()
        client.estimate(wires[i % len(wires)])
        latencies.append(time.perf_counter() - t0)
    latencies.sort()

    return {
        "warm_estimates": done,
        "warm_seconds": elapsed,
        "warm_throughput_per_sec": throughput,
        "batch_size": BATCH_SIZE,
        "single_request_p50_ms": 1e3 * latencies[len(latencies) // 2],
        "single_request_p95_ms": 1e3 * latencies[int(len(latencies) * 0.95)],
        "single_requests_timed": len(latencies),
    }


def run_serve_benchmark(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    x, w, v = _dataset(scale)

    identity = []
    for workers in WORKER_COUNTS:
        service = EstimationService(store=ShardedSketchStore(num_shards=4))
        handle = start_server_thread(EstimationServer(service=service, port=0))
        client = ServeClient(handle.host, handle.port)
        try:
            _register_all(client, x, w, v)
            identity.append(_identity_pass(client, x, w, v, workers))
        finally:
            client.close()
            handle.stop()

    service = EstimationService(store=ShardedSketchStore(num_shards=4))
    handle = start_server_thread(EstimationServer(service=service, port=0))
    client = ServeClient(handle.host, handle.port)
    try:
        _register_all(client, x, w, v)
        throughput = _throughput_pass(client, scale)
    finally:
        client.close()
        handle.stop()

    return {
        "scale": scale,
        "matrix_side": x.shape[0],
        "identity": identity,
        **throughput,
        "min_warm_throughput": MIN_WARM_THROUGHPUT,
    }


def test_serve_bit_identity_and_throughput():
    payload = run_serve_benchmark()
    write_bench_json("serve", payload)
    print(
        f"serve ({payload['matrix_side']}^2 matrices): warm "
        f"{payload['warm_throughput_per_sec']:,.0f} est/s over "
        f"{payload['warm_estimates']} estimates, p50 "
        f"{payload['single_request_p50_ms']:.2f} ms, p95 "
        f"{payload['single_request_p95_ms']:.2f} ms"
    )
    for lap in payload["identity"]:
        assert lap["bit_identical"], (
            f"server answers diverge from direct service at "
            f"workers={lap['workers']}: {lap['mismatches']}"
        )
    assert payload["warm_throughput_per_sec"] >= MIN_WARM_THROUGHPUT, (
        f"warm throughput {payload['warm_throughput_per_sec']:,.0f}/s "
        f"below {MIN_WARM_THROUGHPUT:,.0f}/s"
    )


if __name__ == "__main__":
    test_serve_bit_identity_and_throughput()
