"""Appendix B: vectorized vs scalar bitset kernels vs MNC.

The paper studies a multi-threaded bitset on a dense 20K x 20K product and
finds an ~11x speedup that *still* loses to single-threaded MNC. In this
single-process reproduction the vectorized (whole-row numpy OR-reduce)
kernel stands in for the parallel bitset and the scalar (one-row-at-a-time)
kernel for the sequential one; the claim to reproduce is the ordering

    MNC Basic < MNC < vectorized bitset << scalar bitset.
"""

import time

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.sparsest.report import simple_table

N = 1200
SPARSITY = 0.99

VARIANTS = [
    ("Bitset scalar", "bitset", {"kernel": "scalar"}),
    ("Bitset vectorized", "bitset", {"kernel": "vectorized"}),
    ("MNC Basic", "mnc_basic", {}),
    ("MNC", "mnc", {}),
]


def _pair():
    return (
        random_sparse(N, N, SPARSITY, seed=201),
        random_sparse(N, N, SPARSITY, seed=202),
    )


@pytest.mark.parametrize("label,name,kwargs", VARIANTS)
def test_dense_product_estimation(benchmark, label, name, kwargs):
    a, b = _pair()
    estimator = make_estimator(name, **kwargs)

    def run():
        sa, sb = estimator.build(a), estimator.build(b)
        return estimator.estimate_nnz(Op.MATMUL, [sa, sb])

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = label


def test_print_appendix_b(benchmark):
    def sweep():
        a, b = _pair()
        rows = []
        timings = {}
        for label, name, kwargs in VARIANTS:
            estimator = make_estimator(name, **kwargs)
            start = time.perf_counter()
            sa, sb = estimator.build(a), estimator.build(b)
            construct = time.perf_counter() - start
            start = time.perf_counter()
            estimator.estimate_nnz(Op.MATMUL, [sa, sb])
            estimate = time.perf_counter() - start
            rows.append([label, construct, estimate, construct + estimate])
            timings[label] = construct + estimate
        return rows, timings

    rows, timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["Variant", "construct [s]", "estimate [s]", "total [s]"], rows,
        title=f"Appendix B: bitset kernels vs MNC, dense {N}x{N} product (s={SPARSITY})",
    )
    write_result("appendix_b_bitset", table)

    # The vectorized kernel must beat the scalar one by a large factor...
    assert timings["Bitset vectorized"] < timings["Bitset scalar"] / 3
    # ...and both MNC variants must still beat the vectorized bitset.
    assert timings["MNC"] < timings["Bitset vectorized"]
    assert timings["MNC Basic"] < timings["Bitset vectorized"]
