"""Figure 12: baseline parameter sensitivity.

(a)/(b): layered-graph accuracy vs r-vector length on B2.1 and B2.2, with
the (parameter-free) MNC error as the reference line.
(c)/(d): density-map accuracy vs block size on B2.4 and B2.2.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

ROUNDS_SWEEP = [2, 8, 32, 128]
BLOCK_SWEEP = [16, 64, 256, 1024]
REPETITIONS = 5


def _lgraph_error(case_id, rounds, scale, seed):
    root = get_use_case(case_id).build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator("layered_graph", rounds=rounds, seed=seed)
    return relative_error(truth, estimate_root_nnz(root, estimator))


def _dmap_error(case_id, block, scale):
    root = get_use_case(case_id).build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator("density_map", block_size=block)
    return relative_error(truth, estimate_root_nnz(root, estimator))


def _mnc_error(case_id, scale):
    root = get_use_case(case_id).build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    return relative_error(truth, estimate_root_nnz(root, make_estimator("mnc")))


@pytest.mark.parametrize("rounds", ROUNDS_SWEEP)
def test_lgraph_rounds_time(benchmark, scale, rounds):
    """Estimation time grows linearly with the number of rounds (B2.1)."""
    root = get_use_case("B2.1").build(scale=scale, seed=0)
    estimator = make_estimator("layered_graph", rounds=rounds)
    benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds


@pytest.mark.parametrize("block", BLOCK_SWEEP)
def test_dmap_block_time(benchmark, scale, block):
    """Estimation time shrinks with the block size (B2.4)."""
    root = get_use_case("B2.4").build(scale=scale, seed=0)
    estimator = make_estimator("density_map", block_size=block)
    benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["block_size"] = block


def test_print_fig12(benchmark, scale):
    def sweep():
        lgraph_rows = []
        for rounds in ROUNDS_SWEEP:
            b21 = np.mean([
                _lgraph_error("B2.1", rounds, scale, seed) for seed in range(REPETITIONS)
            ])
            b22 = np.mean([
                _lgraph_error("B2.2", rounds, scale, seed) for seed in range(REPETITIONS)
            ])
            lgraph_rows.append([rounds, b21, b22])
        dmap_rows = [
            [block, _dmap_error("B2.4", block, scale), _dmap_error("B2.2", block, scale)]
            for block in BLOCK_SWEEP
        ]
        references = [_mnc_error("B2.1", scale), _mnc_error("B2.2", scale),
                      _mnc_error("B2.4", scale)]
        return lgraph_rows, dmap_rows, references

    lgraph_rows, dmap_rows, references = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    mnc_b21, mnc_b22, mnc_b24 = references
    table_a = simple_table(
        ["rounds r", "B2.1 rel.err", "B2.2 rel.err"], lgraph_rows,
        title=(
            "Figure 12(a-b): LGraph error vs number of rounds "
            f"(MNC reference: B2.1={mnc_b21:.2f}, B2.2={mnc_b22:.2f})"
        ),
    )
    table_b = simple_table(
        ["block b", "B2.4 rel.err", "B2.2 rel.err"], dmap_rows,
        title=(
            "Figure 12(c-d): DMap error vs block size "
            f"(MNC reference: B2.4={mnc_b24:.2f}, B2.2={mnc_b22:.2f})"
        ),
    )
    write_result("fig12_parameters", table_a + "\n\n" + table_b)

    # Paper shape: more rounds help the layered graph on B2.1.
    assert lgraph_rows[-1][1] <= lgraph_rows[0][1]
    # MNC is exact on both B2.1 and B2.2 without any parameter.
    assert mnc_b21 == pytest.approx(1.0)
    assert mnc_b22 == pytest.approx(1.0)
    # Only small blocks can capture Covertype's 54-column structure.
    errors_b22 = {row[0]: row[2] for row in dmap_rows}
    assert errors_b22[16] < errors_b22[1024]
