"""Ablations of the MNC design choices (DESIGN.md Section 3).

Four variants isolate the contribution of the extension vectors and the
Theorem 3.2 bounds across the single-operation use cases; a fifth
comparison measures what probabilistic rounding buys on an ultra-sparse
propagation chain (the Section 3.3 motivation).
"""

import numpy as np
import pytest

from conftest import write_result
from repro.core.propagate import propagate_product
from repro.core.sketch import MNCSketch
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.matrix.ops import matmul
from repro.matrix.random import random_sparse
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = ["B1.1", "B1.4", "B1.5", "B2.1", "B2.2", "B2.3", "B2.4"]
VARIANTS = [
    ("full", dict(use_extensions=True, use_bounds=True)),
    ("no-extensions", dict(use_extensions=False, use_bounds=True)),
    ("no-bounds", dict(use_extensions=True, use_bounds=False)),
    ("basic", dict(use_extensions=False, use_bounds=False)),
]


@pytest.mark.parametrize("label,kwargs", VARIANTS)
def test_variant_time(benchmark, scale, label, kwargs):
    root = get_use_case("B2.3").build(scale=scale, seed=0)
    estimator = make_estimator("mnc", **kwargs)
    benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["variant"] = label


def test_print_ablations(benchmark, scale):
    def sweep():
        rows = []
        for case_id in CASE_IDS:
            root = get_use_case(case_id).build(scale=scale, seed=0)
            truth = true_nnz_of(root)
            row = [case_id]
            for _, kwargs in VARIANTS:
                estimator = make_estimator("mnc", **kwargs)
                row.append(relative_error(truth, estimate_root_nnz(root, estimator)))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["Case"] + [label for label, _ in VARIANTS], rows,
        title=f"Ablation: MNC extension vectors and Theorem 3.2 bounds (scale={scale})",
    )
    write_result("ablation_mnc_variants", table)

    errors = {row[0]: dict(zip([l for l, _ in VARIANTS], row[1:])) for row in rows}
    # The bounds are what make B1.5 exact.
    assert errors["B1.5"]["full"] == pytest.approx(1.0)
    assert errors["B1.5"]["basic"] > 10
    # No variant is ever better than "full" by more than noise.
    for case_id in CASE_IDS:
        for label, _ in VARIANTS[1:]:
            assert errors[case_id]["full"] <= errors[case_id][label] * 1.05, (
                case_id, label,
            )


def test_print_rounding_ablation(benchmark):
    """Probabilistic vs deterministic rounding on an ultra-sparse chain."""

    def run():
        from repro.core.estimate import estimate_product_nnz

        a = random_sparse(3000, 3000, 1e-4, seed=401)
        b = random_sparse(3000, 3000, 1e-4, seed=402)
        c = random_sparse(3000, 3000, 1e-4, seed=403)
        truth = matmul(matmul(a, b), c).nnz
        h = [MNCSketch.from_matrix(m) for m in (a, b, c)]
        probabilistic = []
        for seed in range(10):
            h_ab = propagate_product(h[0], h[1], rng=np.random.default_rng(seed))
            probabilistic.append(estimate_product_nnz(h_ab, h[2]))
        # Deterministic baseline: floor the Eq-11 scaled row histogram. At
        # this sparsity every scaled entry is a fraction below 1, so the
        # floored intermediate collapses toward empty — the failure mode
        # probabilistic rounding exists to prevent.
        ab_estimate = estimate_product_nnz(h[0], h[1])
        floor_hr = np.floor(h[0].hr * (ab_estimate / max(float(h[0].hr.sum()), 1.0)))
        return truth, probabilistic, float(floor_hr.sum())

    truth, probabilistic, floor_total = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_estimate = float(np.mean(probabilistic))
    rows = [
        ["true nnz of (AB)C", truth, ""],
        ["probabilistic rounding (mean of 10)", mean_estimate,
         relative_error(truth, mean_estimate)],
        ["deterministic floor: sum(hr) after AB", floor_total,
         "empty" if floor_total == 0 else ""],
    ]
    table = simple_table(
        ["Quantity", "value", "rel.err"], rows,
        title="Ablation: probabilistic rounding on an ultra-sparse chain (3K^2, s=1e-4)",
    )
    write_result("ablation_rounding", table)

    # Deterministic flooring of per-row expectations ~0.x collapses the
    # intermediate to (near) empty; probabilistic rounding stays unbiased.
    assert floor_total < truth / 10
    assert truth / 3 <= mean_estimate <= truth * 3
