"""Adaptive routing vs always-MNC (docs/ROUTING.md).

Two request mixes, mirroring the accuracy/cost spectrum argument the
router exploits:

- **easy**: dense products where the MetaAC/MetaWC bracket already
  collapses — the router must answer from the metadata tier and beat a
  fresh MNC estimate by at least :data:`MIN_SPEEDUP` in total time, while
  every estimate stays within the tolerance of ground truth.
- **hard**: sparse products under a tight tolerance — the router must
  escalate to a *certified* tier (Theorem 3.2 interval or exact) and the
  estimates must still land within the tolerance of ground truth.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_router.py``) or
under pytest; either way it emits ``benchmarks/results/BENCH_router.json``
with both mixes' timings, tiers, and errors.
"""

from __future__ import annotations

import time

from conftest import bench_scale, write_bench_json
from repro.ir.estimate import estimate_root_nnz
from repro.ir.interpreter import evaluate
from repro.ir.nodes import leaf
from repro.estimators import make_estimator
from repro.matrix.conversion import as_csr
from repro.matrix.random import random_sparse
from repro.router import AdaptiveRouter

#: Acceptance: on the easy mix, routed estimation must cost at most half
#: of always-MNC (the issue's headline claim is ">= 2x cheaper").
MIN_SPEEDUP = 2.0

EASY_TOLERANCE = 0.5
HARD_TOLERANCE = 0.05
ROUNDS = 3


def _product(m: int, k: int, n: int, density: float, seed: int):
    """One matmul expression over canonical-CSR leaves (so the timed
    section measures estimation, not one-time format conversion)."""
    a = as_csr(random_sparse(m, k, density, seed=seed))
    b = as_csr(random_sparse(k, n, density, seed=seed + 1))
    return leaf(a, name=f"A{seed}") @ leaf(b, name=f"B{seed}")


def _easy_mix(scale: float):
    """Dense products: the metadata bracket collapses, cheap tiers win."""
    side = max(300, int(6000 * scale))
    return [
        _product(side, side - 40, side, 0.15, seed=index * 10)
        for index in range(6)
    ]


def _hard_mix(scale: float):
    """Sparse products: wide metadata brackets force escalation."""
    side = max(200, int(2000 * scale))
    return [
        _product(side, side - 20, side, 0.01, seed=1000 + index * 10)
        for index in range(4)
    ]


def _relative_error(truth: float, estimate: float) -> float:
    """The paper's M1 error, ``max / min`` (1.0 is perfect)."""
    low, high = sorted((max(truth, 1e-12), max(estimate, 1e-12)))
    return high / low


def _run_mix(exprs, tolerance: float, seed: int) -> dict:
    """Route every expression and time the same work done by fresh MNC."""
    truths = [float(evaluate(root).nnz) for root in exprs]

    auto_seconds = []
    mnc_seconds = []
    for _ in range(ROUNDS):
        router = AdaptiveRouter(tolerance=tolerance, seed=seed)
        start = time.perf_counter()
        routed = [router.route(root) for root in exprs]
        auto_seconds.append(time.perf_counter() - start)

        start = time.perf_counter()
        mnc = [
            estimate_root_nnz(root, make_estimator("mnc")) for root in exprs
        ]
        mnc_seconds.append(time.perf_counter() - start)

    auto_best = min(auto_seconds)
    mnc_best = min(mnc_seconds)
    decisions = [decision for _, decision in routed]
    errors = [
        _relative_error(truth, nnz)
        for truth, (nnz, _) in zip(truths, routed)
    ]
    return {
        "expressions": len(exprs),
        "tolerance": tolerance,
        "auto_seconds": auto_best,
        "mnc_seconds": mnc_best,
        "speedup_vs_mnc": mnc_best / auto_best if auto_best else float("inf"),
        "tiers": [decision.tier for decision in decisions],
        "escalations": [decision.escalations for decision in decisions],
        "widths": [decision.width for decision in decisions],
        "certified": [decision.certified for decision in decisions],
        "relative_errors": errors,
        "max_relative_error": max(errors),
        "mnc_relative_errors": [
            _relative_error(truth, estimate)
            for truth, estimate in zip(truths, mnc)
        ],
    }


def run_router_benchmark(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    easy = _run_mix(_easy_mix(scale), EASY_TOLERANCE, seed=0)
    hard = _run_mix(_hard_mix(scale), HARD_TOLERANCE, seed=0)
    return {
        "benchmark": "router_adaptive_vs_mnc",
        "scale": scale,
        "easy": easy,
        "hard": hard,
    }


def test_router_cheaper_on_easy_mix_within_tolerance():
    payload = run_router_benchmark()
    write_bench_json("router", payload)
    easy, hard = payload["easy"], payload["hard"]
    print(
        f"router easy mix: auto {easy['auto_seconds'] * 1e3:.1f} ms vs "
        f"mnc {easy['mnc_seconds'] * 1e3:.1f} ms "
        f"({easy['speedup_vs_mnc']:.1f}x), tiers {sorted(set(easy['tiers']))}"
    )
    print(
        f"router hard mix: tiers {sorted(set(hard['tiers']))}, "
        f"max error {hard['max_relative_error']:.4f}"
    )

    # Easy mix: cheap tiers answer, and the saved work is real.
    assert easy["speedup_vs_mnc"] >= MIN_SPEEDUP, (
        f"auto only {easy['speedup_vs_mnc']:.2f}x cheaper than always-MNC "
        f"on the easy mix (need >= {MIN_SPEEDUP:.0f}x)"
    )
    assert all(width <= EASY_TOLERANCE for width in easy["widths"])
    assert easy["max_relative_error"] <= 1.0 + EASY_TOLERANCE

    # Hard mix: the tight tolerance forces a certified answer that is
    # actually within tolerance of ground truth.
    assert all(hard["certified"])
    assert all(width <= HARD_TOLERANCE for width in hard["widths"])
    assert hard["max_relative_error"] <= 1.0 + HARD_TOLERANCE


if __name__ == "__main__":
    test_router_cheaper_on_easy_mix_within_tolerance()
