"""Paper-scale spot check: the 20K x 20K runtime points of Figure 7.

The main Figure 7 benchmark runs at 2K for wall-clock reasons; this module
runs the paper's actual 20,000-dimension products at the ultra-sparse end
(s = 1e-3 and 1e-2) where memory permits, demonstrating that the pure-
Python estimators handle paper-sized inputs and that the relative ordering
(MNC ~ sampling << layered graph, all << true MM at s >= 1e-2) holds
unchanged at full scale.
"""

import time

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.matrix.ops import matmul
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.sparsest.report import simple_table

N = 20_000
SPARSITIES = [0.001, 0.01]
ESTIMATORS = ["sampling", "mnc", "layered_graph"]


def _pair(sparsity):
    return (
        random_sparse(N, N, sparsity, seed=501),
        random_sparse(N, N, sparsity, seed=502),
    )


@pytest.mark.parametrize("sparsity", SPARSITIES)
@pytest.mark.parametrize("name", ESTIMATORS)
def test_paper_scale_estimation(benchmark, name, sparsity):
    a, b = _pair(sparsity)
    estimator = make_estimator(name)

    def run():
        sa, sb = estimator.build(a), estimator.build(b)
        return estimator.estimate_nnz(Op.MATMUL, [sa, sb])

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sparsity"] = sparsity


def test_print_paper_scale(benchmark):
    def sweep():
        rows = []
        for sparsity in SPARSITIES:
            a, b = _pair(sparsity)
            timings = {}
            for name in ESTIMATORS:
                estimator = make_estimator(name)
                start = time.perf_counter()
                sa, sb = estimator.build(a), estimator.build(b)
                estimator.estimate_nnz(Op.MATMUL, [sa, sb])
                timings[name] = time.perf_counter() - start
            start = time.perf_counter()
            matmul(a, b)
            timings["mm"] = time.perf_counter() - start
            rows.append([
                sparsity, timings["sampling"], timings["mnc"],
                timings["layered_graph"], timings["mm"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["sparsity", "Sample [s]", "MNC [s]", "LGraph [s]", "MM true [s]"],
        rows,
        title=f"Paper-scale Figure 7 points: {N}x{N} products",
    )
    write_result("paper_scale", table)

    # Orderings the paper reports at this dimension.
    for row in rows:
        sparsity, sample_t, mnc_t, lgraph_t, mm_t = row
        assert mnc_t < lgraph_t
    # At s = 1e-2 every estimator is far below the multiplication itself.
    dense_row = rows[-1]
    assert dense_row[2] < dense_row[4] / 2  # MNC << MM