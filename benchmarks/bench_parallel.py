"""Parallel SparsEst execution: workers=4 vs serial (docs/PARALLEL.md).

Runs the full (use case x estimator) SparsEst matrix twice through
:func:`repro.sparsest.runner.execute` — once serially, once across four
worker processes — after a warm-up pass that populates the dataset disk
cache and the ground-truth memo (worker processes inherit both via fork,
so the comparison measures estimation fan-out, not first-touch dataset
generation).

Two acceptance criteria:

- determinism, always enforced: the parallel outcomes must be
  bit-identical to the serial ones (everything except wall time);
- speedup, enforced only when the machine actually has >= 4 usable CPUs
  (``speedup_enforced`` in the JSON records which case ran): workers=4
  must finish the suite at least 2.5x faster than workers=1.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
or under pytest; either way it emits
``benchmarks/results/BENCH_parallel.json``.
"""

from __future__ import annotations

import os
import time

from conftest import bench_scale, write_bench_json
from repro.sparsest.runner import clear_truth_cache, execute_outcomes, requests_for
from repro.sparsest.suite import DEFAULT_LINEUP
from repro.sparsest.usecases import all_use_cases

#: Required workers=4 speedup over serial, when enough CPUs exist.
MIN_SPEEDUP = 2.5

PARALLEL_WORKERS = 4

#: Seeds aggregated per cell: keeps each pool task compute-bound enough
#: that per-task dispatch overhead cannot dominate the measured speedup.
REPETITIONS = 3


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _suite_requests(scale: float):
    return requests_for(
        all_use_cases(), list(DEFAULT_LINEUP),
        scale=scale, repetitions=REPETITIONS,
    )


def run_parallel_benchmark(scale: float | None = None) -> dict:
    """Time the suite serially and with 4 workers; returns the payload."""
    scale = bench_scale() if scale is None else scale
    requests = _suite_requests(scale)

    # Warm-up: materialize datasets on disk and ground truths in the memo,
    # so fork-inherited state puts both timed runs on equal footing.
    execute_outcomes(requests, workers=1)

    start = time.perf_counter()
    serial = execute_outcomes(requests, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = execute_outcomes(requests, workers=PARALLEL_WORKERS)
    parallel_seconds = time.perf_counter() - start

    identical = (
        [o.deterministic_key() for o in serial]
        == [o.deterministic_key() for o in parallel]
    )
    cpus = _usable_cpus()
    return {
        "benchmark": "parallel_sparsest_suite",
        "scale": scale,
        "cells": len(requests),
        "repetitions": REPETITIONS,
        "workers": PARALLEL_WORKERS,
        "usable_cpus": cpus,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else 0.0,
        "bit_identical": identical,
        "speedup_enforced": cpus >= PARALLEL_WORKERS,
        "statuses": {
            status: sum(1 for o in serial if o.status == status)
            for status in sorted({o.status for o in serial})
        },
    }


def test_parallel_suite_matches_serial_and_scales():
    payload = run_parallel_benchmark()
    write_bench_json("parallel", payload)
    print(
        f"sparsest suite ({payload['cells']} cells): serial "
        f"{payload['serial_seconds']:.2f} s, workers={payload['workers']} "
        f"{payload['parallel_seconds']:.2f} s, speedup "
        f"{payload['speedup']:.2f}x (cpus={payload['usable_cpus']}, "
        f"threshold {'on' if payload['speedup_enforced'] else 'off'})"
    )
    assert payload["bit_identical"], (
        "workers=4 outcomes differ from the serial run"
    )
    if payload["speedup_enforced"]:
        assert payload["speedup"] >= MIN_SPEEDUP, (
            f"workers={payload['workers']} only {payload['speedup']:.2f}x "
            f"faster than serial (need >= {MIN_SPEEDUP}x)"
        )


if __name__ == "__main__":
    clear_truth_cache()
    test_parallel_suite_matches_serial_and_scales()
