"""Shared configuration for the benchmark suite.

Every module regenerates one of the paper's tables or figures as an ASCII
table, printed to the terminal and written to ``benchmarks/results/``.
Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.2, i.e. datasets at ~1/25 of the paper's cell counts — see
EXPERIMENTS.md for the exact dimensions this implies).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Benchmark scale factor (1.0 would be paper-sized inputs)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


def write_result(name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    print()
    print(content)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
