"""Shared configuration for the benchmark suite.

Every module regenerates one of the paper's tables or figures as an ASCII
table, printed to the terminal and written to ``benchmarks/results/``.
Modules that feed the cross-PR performance trajectory additionally emit
machine-readable ``BENCH_<name>.json`` files via :func:`write_bench_json`.
Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.2, i.e. datasets at ~1/25 of the paper's cell counts — see
EXPERIMENTS.md for the exact dimensions this implies).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Benchmark scale factor (1.0 would be paper-sized inputs)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


def write_result(name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    print()
    print(content)


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats (JSON has no NaN/inf) and numpy scalars."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (str, int, float, bool)):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            return str(value)
    return value


def write_bench_json(name: str, payload: Any) -> Path:
    """Persist *payload* as ``benchmarks/results/BENCH_<name>.json``.

    These files are the machine-readable counterpart of the ASCII tables:
    per-benchmark name, seconds, and relative error, so the performance
    trajectory can be diffed across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(_json_safe(payload), indent=2, sort_keys=True) + "\n"
    )
    return path


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
