"""Table 4: accuracy of the sampling-based estimator family.

Biased sampling (Eq 5), the unbiased extension (Eq 16), the hash-based
estimator of Amossen et al., and MNC, on all single-operation use cases
B1.1-B2.5 (the hash estimator is N/A on the element-wise B2.5, as in the
paper).
"""

import math

import pytest

from conftest import write_result
from repro.errors import UnsupportedOperationError
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

CASE_IDS = [
    "B1.1", "B1.2", "B1.3", "B1.4", "B1.5",
    "B2.1", "B2.2", "B2.3", "B2.4", "B2.5",
]
LINEUP = [
    ("Biased", "sampling", {}),
    ("Unbiased", "sampling_unbiased", {}),
    ("Hash", "hash", {}),
    ("MNC", "mnc", {}),
]


def _error(case_id, registry_name, kwargs, scale):
    root = get_use_case(case_id).build(scale=scale, seed=0)
    truth = true_nnz_of(root)
    estimator = make_estimator(registry_name, **kwargs)
    try:
        estimate = estimate_root_nnz(root, estimator)
    except UnsupportedOperationError:
        return None
    return relative_error(truth, estimate)


@pytest.mark.parametrize("label,registry_name,kwargs", LINEUP)
def test_estimation_time_b21(benchmark, scale, label, registry_name, kwargs):
    root = get_use_case("B2.1").build(scale=scale, seed=0)
    estimator = make_estimator(registry_name, **kwargs)
    benchmark.pedantic(
        lambda: estimate_root_nnz(root, estimator), rounds=1, iterations=1
    )
    benchmark.extra_info["estimator"] = label


def test_print_table4(benchmark, scale):
    def sweep():
        rows = []
        for case_id in CASE_IDS:
            row = [case_id]
            for label, registry_name, kwargs in LINEUP:
                error = _error(case_id, registry_name, kwargs, scale)
                row.append("N/A" if error is None else error)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["Name"] + [label for label, _, _ in LINEUP], rows,
        title=f"Table 4: accuracy of sampling-based estimators (scale={scale})",
    )
    write_result("table4_sampling", table)

    errors = {row[0]: dict(zip([l for l, _, _ in LINEUP], row[1:])) for row in rows}

    def value(case, estimator):
        cell = errors[case][estimator]
        return math.inf if cell == "N/A" else cell

    # MNC exact on B1.1-B1.5, B2.1, B2.2, B2.5 (Table 4's 1.0 entries).
    for case in ("B1.1", "B1.2", "B1.3", "B1.4", "B1.5", "B2.1", "B2.2", "B2.5"):
        assert value(case, "MNC") == pytest.approx(1.0), case
    # The unbiased estimator dramatically improves over the biased one on
    # the structure-preserving cases (paper: 53,560 -> 1.01 on B1.2).
    assert value("B1.2", "Unbiased") < value("B1.2", "Biased") / 10
    assert value("B1.3", "Unbiased") < value("B1.3", "Biased") / 10
    # But the biased lower-bound estimator wins on B1.5 (it IS the truth).
    assert value("B1.5", "Biased") < value("B1.5", "Unbiased")
    # Hash is N/A on the element-wise B2.5.
    assert errors["B2.5"]["Hash"] == "N/A"
