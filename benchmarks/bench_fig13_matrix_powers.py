"""Figure 13: accuracy on the B3.3 matrix-power chain P G, P G G, ...

Reuses the B3.3 use case's leaves (selection matrix P, citation graph G)
and scores every estimator on each prefix of the chain. The paper's
counter-intuitive finding must reproduce: matrix powers densify and become
*more* uniform, so MetaAC/DMap errors shrink with chain length while MNC's
grow — the one benchmark where structure propagation is counter-productive.
"""

import pytest

from conftest import write_result
from repro.estimators import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.ir.nodes import matmul
from repro.sparsest.metrics import relative_error
from repro.sparsest.report import simple_table
from repro.sparsest.runner import true_nnz_of
from repro.sparsest.usecases import get_use_case

LINEUP = ["meta_ac", "mnc_basic", "mnc", "density_map", "layered_graph"]
PREFIX_LABELS = ["PG", "PGG", "PGGG", "PGGGG"]


def _chain_prefixes(scale):
    root = get_use_case("B3.3").build(scale=scale, seed=0)
    leaves = {leaf.label: leaf for leaf in root.leaves()}
    p, g = leaves["P"], leaves["G"]
    prefixes = []
    node = matmul(p, g, name="PG")
    prefixes.append(node)
    for label in PREFIX_LABELS[1:]:
        node = matmul(node, g, name=label)
        prefixes.append(node)
    return prefixes


@pytest.mark.parametrize("name", LINEUP)
def test_full_chain_estimation_time(benchmark, scale, name):
    prefixes = _chain_prefixes(scale)
    estimator = make_estimator(name)
    value = benchmark.pedantic(
        lambda: estimate_root_nnz(prefixes[-1], estimator), rounds=1, iterations=1
    )
    truth = true_nnz_of(prefixes[-1])
    benchmark.extra_info["relative_error"] = relative_error(truth, value)


def test_print_fig13(benchmark, scale):
    def sweep():
        prefixes = _chain_prefixes(scale)
        truths = [true_nnz_of(node) for node in prefixes]
        rows = []
        for name in LINEUP:
            estimator = make_estimator(name)
            row = [estimator.name]
            for node, truth in zip(prefixes, truths):
                estimate = estimate_root_nnz(node, estimator)
                row.append(relative_error(truth, estimate))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = simple_table(
        ["Estimator"] + PREFIX_LABELS, rows,
        title=f"Figure 13: relative errors on B3.3 matrix powers (scale={scale})",
    )
    write_result("fig13_matrix_powers", table)

    errors = {row[0]: row[1:] for row in rows}
    # MNC is exact on the initial selection P G (Theorem 3.1).
    assert errors["MNC"][0] == pytest.approx(1.0)
    # MetaAC and DMap miss the selection structure on the first product.
    assert errors["MetaAC"][0] > errors["MNC"][0]
    # The layered graph stays accurate along the whole chain.
    assert max(errors["LGraph"]) < 2.0
    # Densifying chain: MetaAC's error shrinks with depth (paper's
    # "decreasing errors with increasing chain length").
    assert errors["MetaAC"][-1] < errors["MetaAC"][0]
