"""Distributed sketch construction and driver-side estimation.

Run with: python examples/distributed_sketching.py

The paper notes the MNC sketch's O(dims) size makes it "amenable to
large-scale ML, where the sketch can be computed via distributed
operations and subsequently collected and used in the driver". This
example plays both roles in one process:

1. "workers" sketch row shards of a large matrix independently and
   serialize their sketches to disk;
2. the "driver" warm-starts a :class:`~repro.catalog.store.SketchStore`
   from the shard directory (the catalog keys sketches by filename, in
   sorted order, so ``worker-0 .. worker-N`` come back in shard order),
   merges them — exactly — and runs product estimation plus a confidence
   interval without ever seeing the data.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.catalog import SketchStore
from repro.core import (
    MNCSketch,
    estimate_product_interval,
    merge_row_partitions,
)
from repro.core.serialize import save_sketch
from repro.matrix import matmul, random_sparse


def main() -> None:
    workers = 4
    matrix_a = random_sparse(20_000, 5_000, 0.002, seed=1)
    matrix_b = random_sparse(5_000, 8_000, 0.001, seed=2)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # --- worker side: sketch row shards independently -----------------
        boundaries = np.linspace(0, matrix_a.shape[0], workers + 1).astype(int)
        for worker, (start, stop) in enumerate(zip(boundaries, boundaries[1:])):
            shard = matrix_a[start:stop]
            sketch = MNCSketch.from_matrix(shard)
            save_sketch(root / f"worker-{worker}.npz", sketch)
            print(f"worker {worker}: sketched rows [{start}, {stop}) "
                  f"-> {sketch.size_bytes():,} bytes on disk")

        # --- driver side: merge, never touching the data -------------------
        # The catalog loads every shard sketch in sorted filename order, so
        # worker-0 .. worker-3 arrive in top-to-bottom shard order.
        store = SketchStore()
        shard_keys = store.warm_start(root)
        shards = [store.get(key) for key in shard_keys]
        print(f"\ndriver: warm-started catalog with {len(shard_keys)} shard "
              f"sketch(es), {store.bytes_used:,} bytes resident")
        merged = merge_row_partitions(shards)
        direct = MNCSketch.from_matrix(matrix_a)
        assert (merged.hr == direct.hr).all() and (merged.hc == direct.hc).all()
        print(f"\ndriver: merged sketch {merged.shape}, nnz {merged.total_nnz:,} "
              "(identical to a direct sketch of the full matrix)")

        sketch_b = MNCSketch.from_matrix(matrix_b)
        interval = estimate_product_interval(merged, sketch_b, confidence=0.95)
        cells = matrix_a.shape[0] * matrix_b.shape[1]
        print(f"\nproduct sparsity estimate: {interval.estimate / cells:.3e}")
        print(f"95% interval: [{interval.lower / cells:.3e}, "
              f"{interval.upper / cells:.3e}]"
              + ("  (exact)" if interval.exact else ""))

        truth = matmul(matrix_a, matrix_b).nnz
        print(f"exact result:              {truth / cells:.3e}  "
              f"({'inside' if interval.contains(truth) else 'outside'} the interval)")


if __name__ == "__main__":
    main()
