"""Format decisions and memory pre-allocation guided by estimators.

Run with: python examples/format_decisions.py

This is the paper's motivating application: before an ML runtime executes
an operation, it must decide the output's physical format (sparse CSR or
dense FP64) and pre-allocate the buffer — from a sparsity *estimate*. A
wrong estimate costs real memory: a dense buffer for an ultra-sparse
output wastes `m*n*8` bytes; an undersized sparse buffer forces a
reallocation mid-operation.

The script executes the paper's adversarial B1.4/B1.5 products and the
NLP encode under four estimators and reports the allocation regret each
one causes.
"""

from __future__ import annotations

from repro.estimators import make_estimator
from repro.ir import leaf, matmul
from repro.matrix.random import outer_product_pair
from repro.runtime import execute_with_decisions
from repro.sparsest.generators import nlp_pair


def main() -> None:
    n = 1_000
    column, row = outer_product_pair(n)
    tokens, embeddings = nlp_pair(
        rows=5_000, vocab=2_000, dimensions=32, known_fraction=0.01, seed=5
    )

    scenarios = {
        "B1.4 outer (truly dense)": matmul(leaf(column, "C"), leaf(row, "R")),
        "B1.5 inner (single nnz)": matmul(leaf(row, "R"), leaf(column, "C")),
        "NLP encode (ultra sparse)": matmul(leaf(tokens, "X"), leaf(embeddings, "W")),
    }
    estimators = ["meta_wc", "meta_ac", "density_map", "mnc"]

    for title, root in scenarios.items():
        print(f"\n=== {title}  ({root.shape[0]}x{root.shape[1]} output)")
        print(f"{'estimator':12s} {'format ok':>10s} {'over-alloc':>12s} "
              f"{'under-alloc':>12s} {'regret':>10s}")
        for name in estimators:
            summary = execute_with_decisions(root, make_estimator(name))
            decision = summary.report.decisions[0]
            print(f"{summary.estimator:12s} "
                  f"{'yes' if decision.format_correct else 'NO':>10s} "
                  f"{decision.over_allocated_bytes / 1e6:10.2f} MB "
                  f"{decision.under_allocated_bytes / 1e6:10.2f} MB "
                  f"{decision.regret_bytes / 1e6:8.2f} MB")

    print(
        "\nMNC's exactness on structured products means zero regret where\n"
        "the metadata estimators either waste a dense buffer (B1.5, NLP)\n"
        "or undersize a sparse one (B1.4)."
    )


if __name__ == "__main__":
    main()
