"""Sparsity-aware matrix-multiplication-chain optimization (Appendix C).

Run with: python examples/mmchain_optimization.py

Builds a chain of matrices with wildly varying sparsity, optimizes the
multiplication order twice — with the classic dimensions-only dynamic
program and with the MNC-sketch-based sparsity-aware extension (Eq 17) —
and evaluates both plans plus a sample of random plans under the *true*
sparse multiply-pair cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import MNCSketch
from repro.matrix import random_sparse
from repro.optimizer import (
    enumerate_random_plans,
    optimize_chain_dense,
    optimize_chain_sparse,
    plan_cost_true,
    plan_to_string,
)


def main() -> None:
    # An 8-matrix chain: equal dimensions (so the dense DP has no signal to
    # work with) but sparsities spanning three orders of magnitude.
    rng = np.random.default_rng(11)
    n = 300
    sparsities = [0.6, 0.004, 0.5, 0.3, 0.002, 0.7, 0.05, 0.6]
    matrices = [random_sparse(n, n, s, seed=rng) for s in sparsities]
    names = [f"M{i + 1}({s:g})" for i, s in enumerate(sparsities)]
    print("chain:", " @ ".join(names))

    sketches = [MNCSketch.from_matrix(matrix) for matrix in matrices]

    dense_solution = optimize_chain_dense([m.shape for m in matrices])
    sparse_solution = optimize_chain_sparse(sketches, rng=rng)

    dense_true = plan_cost_true(dense_solution.plan, matrices)
    sparse_true = plan_cost_true(sparse_solution.plan, matrices)

    print(f"\ndense-DP plan:  {plan_to_string(dense_solution.plan)}")
    print(f"  true sparse cost: {dense_true:,.0f} multiply pairs")
    print(f"sparse-DP plan: {plan_to_string(sparse_solution.plan)}")
    print(f"  true sparse cost: {sparse_true:,.0f} multiply pairs")
    print(f"  speedup over dense-DP plan: {dense_true / sparse_true:.1f}x")

    # Where do random plans land?
    random_true = np.array([
        plan_cost_true(plan, matrices)
        for plan in enumerate_random_plans(len(matrices), 50, rng=rng)
    ])
    print(f"\n50 random plans (true cost): best {random_true.min():,.0f}, "
          f"median {np.median(random_true):,.0f}, worst {random_true.max():,.0f}")
    print(f"sparse-DP plan vs best random: "
          f"{random_true.min() / sparse_true:.2f}x")


if __name__ == "__main__":
    main()
