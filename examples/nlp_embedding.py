"""NLP sentence encoding (the paper's introductory example, Figure 1).

Run with: python examples/nlp_embedding.py

A padded token-sequence matrix X (one non-zero per row, huge skew toward
the unknown-token column) is multiplied with a pre-trained word-embeddings
matrix W (dense except the empty unknown-token row), then reshaped row-wise
from token-embeddings to sentence-embeddings.

Because every row of X has exactly one non-zero, Theorem 3.1 makes the MNC
estimate *exact* — while the average-case metadata estimator, blind to the
structure, is off by orders of magnitude. This script builds the full
expression DAG, estimates its sparsity with several estimators, and
compares against ground truth.
"""

from __future__ import annotations

from repro.estimators import make_estimator
from repro.ir import estimate_root_sparsity, evaluate, leaf, matmul, reshape
from repro.matrix import sparsity
from repro.sparsest.generators import embeddings_matrix, nlp_pair


def main() -> None:
    sentences = 2_000
    tokens_per_sentence = 10
    rows = sentences * tokens_per_sentence  # padded token positions
    vocab = 5_000
    dimensions = 64
    known_fraction = 0.01  # most positions are pads / unknown tokens

    tokens, embeddings = nlp_pair(
        rows=rows, vocab=vocab, dimensions=dimensions,
        known_fraction=known_fraction, seed=7,
    )
    print(f"token matrix X: {tokens.shape}, sparsity {sparsity(tokens):.2e}")
    print(f"embeddings  W: {embeddings.shape}, sparsity {sparsity(embeddings):.4f}")

    # Build the expression: reshape(X @ W) from (rows x dims) to
    # (sentences x tokens_per_sentence * dims).
    x = leaf(tokens, name="X")
    w = leaf(embeddings, name="W")
    encoded = matmul(x, w, name="XW")
    root = reshape(
        encoded, sentences, tokens_per_sentence * dimensions, name="sentences"
    )
    print(f"\nexpression: reshape(X @ W) -> {root.shape}")

    truth = sparsity(evaluate(root))
    print(f"true output sparsity: {truth:.6f} "
          f"(~= known fraction {known_fraction}, independent of dimensions)")

    print(f"\n{'estimator':12s} {'estimate':>12s} {'rel. error':>12s}")
    for name in ("mnc", "mnc_basic", "meta_ac", "meta_wc", "density_map"):
        estimator = make_estimator(name)
        estimate = estimate_root_sparsity(root, estimator)
        error = max(truth, estimate) / max(min(truth, estimate), 1e-300)
        print(f"{estimator.name:12s} {estimate:12.6f} {error:12.2f}")

    # The practical consequence: memory pre-allocation for the output.
    cells = root.shape[0] * root.shape[1]
    mnc_estimate = estimate_root_sparsity(root, make_estimator("mnc"))
    meta_estimate = estimate_root_sparsity(root, make_estimator("meta_wc"))
    print(f"\ndense allocation would be   {cells * 8 / 1e6:10.1f} MB")
    print(f"MNC-guided sparse estimate  {mnc_estimate * cells * 16 / 1e6:10.1f} MB")
    print(f"MetaWC-guided estimate      {meta_estimate * cells * 16 / 1e6:10.1f} MB")


if __name__ == "__main__":
    main()
