"""Quickstart: estimating the sparsity of a matrix product with MNC.

Run with: python examples/quickstart.py

Builds two random sparse matrices, constructs their MNC sketches, estimates
the product sparsity with Algorithm 1, and compares against the exact
result and the naive metadata estimators.
"""

from __future__ import annotations

import time

import repro
from repro.matrix import matmul, random_sparse, sparsity


def main() -> None:
    # 1) Two sparse operands: A is 5000 x 4000 at 1% density, B is
    #    4000 x 6000 at 2% density.
    a = random_sparse(5000, 4000, 0.01, seed=1)
    b = random_sparse(4000, 6000, 0.02, seed=2)

    # 2) Build the MNC sketches — O(nnz + dims) time, O(dims) space.
    start = time.perf_counter()
    sketch_a = repro.sketch(a)
    sketch_b = repro.sketch(b)
    build_seconds = time.perf_counter() - start
    print(f"sketch A: {sketch_a}")
    print(f"sketch B: {sketch_b}")
    print(f"sketch construction: {build_seconds * 1000:.1f} ms, "
          f"{sketch_a.size_bytes() + sketch_b.size_bytes()} bytes total")

    # 3) Estimate the product sparsity (Algorithm 1) — O(common dim) time.
    start = time.perf_counter()
    estimate = repro.estimate_product_sparsity(sketch_a, sketch_b)
    estimate_seconds = time.perf_counter() - start
    print(f"\nMNC estimate:   sparsity = {estimate:.6f} "
          f"({estimate_seconds * 1e6:.0f} us)")

    # 4) Ground truth (computes the actual boolean product).
    start = time.perf_counter()
    truth = sparsity(matmul(a, b))
    truth_seconds = time.perf_counter() - start
    print(f"exact result:   sparsity = {truth:.6f} "
          f"({truth_seconds * 1000:.0f} ms)")
    print(f"relative error: {max(truth, estimate) / min(truth, estimate):.4f}")

    # 5) Compare against the naive metadata estimators (paper Section 2.1).
    from repro.estimators import make_estimator
    from repro.opcodes import Op

    for name in ("meta_ac", "meta_wc"):
        estimator = make_estimator(name)
        synopses = [estimator.build(a), estimator.build(b)]
        value = estimator.estimate_sparsity(Op.MATMUL, synopses)
        print(f"{estimator.name:8s} estimate: sparsity = {value:.6f}")


if __name__ == "__main__":
    main()
