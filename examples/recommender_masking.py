"""Recommender scoring with known-ratings masking (use case B3.4).

Run with: python examples/recommender_masking.py

A low-rank model (L, R) predicts scores for a selected set of active users;
the element-wise mask ``(P X != 0)`` restricts predictions to known
ratings, e.g. for computing training error. The expression is

    (P @ X != 0) * (P @ L @ R^T)

where X is an ultra-sparse ratings matrix and P a selection matrix. This
script shows how different estimators would size the intermediates — the
decision an ML system makes before allocating them — and scores each
estimator against the exact result.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import make_estimator
from repro.ir import estimate_dag, evaluate, leaf, matmul, neq_zero, transpose
from repro.ir.nodes import ewise_mult
from repro.matrix import random_sparse, selection_matrix, sparsity
from repro.sparsest.datasets import amazon_ratings


def main() -> None:
    ratings = amazon_ratings(users=10_000, items=2_500, seed=3)
    users, items = ratings.shape
    print(f"ratings X: {users} users x {items} items, "
          f"sparsity {sparsity(ratings):.2e}")

    # Select the 1000 most active users.
    activity = np.diff(ratings.indptr)
    top_users = np.sort(np.argsort(activity)[::-1][:1000])
    p = selection_matrix(top_users, users)

    rank = 16
    rng = np.random.default_rng(4)
    l_factor = random_sparse(users, rank, 0.95, seed=rng)
    r_factor = random_sparse(items, rank, 0.85, seed=rng)

    # Expression DAG.
    x = leaf(ratings, "X")
    p_node = leaf(p, "P")
    known = neq_zero(matmul(p_node, x, name="PX"), name="known")
    predictions = matmul(
        matmul(p_node, leaf(l_factor, "L"), name="PL"),
        transpose(leaf(r_factor, "R")),
        name="scores",
    )
    root = ewise_mult(known, predictions, name="masked-scores")
    print(f"expression: (P X != 0) * (P L R^T) -> {root.shape}")

    truth = evaluate(root).nnz
    print(f"true non-zeros: {truth:,}")

    print(f"\n{'estimator':12s} {'nnz estimate':>14s} {'rel. error':>10s} "
          f"{'time':>10s}")
    for name in ("mnc", "meta_ac", "meta_wc", "density_map"):
        estimator = make_estimator(name)
        result = estimate_dag(root, estimator, include_intermediates=True)
        estimate = result["nnz"]
        error = max(truth, estimate) / max(min(truth, estimate), 1e-300)
        print(f"{estimator.name:12s} {estimate:14,.0f} {error:10.2f} "
              f"{result['seconds'] * 1000:8.1f} ms")

    # Intermediate sizing with MNC: what the optimizer would see.
    result = estimate_dag(root, make_estimator("mnc"), include_intermediates=True)
    print("\nMNC intermediate estimates:")
    for estimate in result["intermediates"].values():
        if estimate.label in ("PX", "PL", "scores", "known", "masked-scores"):
            print(f"  {estimate.label:14s} {estimate.shape!s:14s} "
                  f"nnz~{estimate.nnz:12,.0f} sparsity~{estimate.sparsity:.4f}")


if __name__ == "__main__":
    main()
