"""Compiler view: EXPLAIN reports and the sparsity-aware chain rewrite.

Run with: python examples/compiler_explain.py

Builds a product chain the way a user would write it (left to right),
prints the compiler's EXPLAIN report under MNC statistics, applies the
Appendix C chain rewrite, and shows the re-parenthesized plan with its
improved cost — the full loop an ML-system optimizer runs per expression.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import make_estimator
from repro.ir import evaluate, leaf, matmul
from repro.matrix import random_sparse
from repro.matrix.properties import col_nnz, row_nnz
from repro.optimizer import rewrite_chains
from repro.runtime import explain


def true_sparse_cost(root) -> float:
    """Exact multiply-pair cost of a plan (materializes intermediates)."""
    from repro.opcodes import Op

    total = 0.0

    def walk(node):
        nonlocal total
        structure = evaluate(node)
        if node.op is Op.MATMUL:
            left = walk(node.inputs[0])
            right = walk(node.inputs[1])
            total += float(col_nnz(left) @ row_nnz(right))
        return structure

    walk(root)
    return total


def main() -> None:
    # A 5-matrix chain with one ultra-sparse matrix in the middle. Written
    # left-deep — the "natural" but wasteful order.
    rng = np.random.default_rng(21)
    n = 250
    sparsities = [0.6, 0.5, 0.003, 0.5, 0.6]
    matrices = [random_sparse(n, n, s, seed=rng) for s in sparsities]
    nodes = [leaf(m, name=f"M{i + 1}(s={s:g})")
             for i, (m, s) in enumerate(zip(matrices, sparsities))]
    root = nodes[0]
    for node in nodes[1:]:
        root = matmul(root, node)

    mnc = make_estimator("mnc")
    print("=== as written (left-deep):\n")
    print(explain(root, mnc))
    before = true_sparse_cost(root)
    print(f"\ntrue sparse cost: {before:,.0f} multiply pairs")

    rewritten = rewrite_chains(root, rng=22)
    print("\n=== after the sparsity-aware chain rewrite:\n")
    print(explain(rewritten, make_estimator("mnc")))
    after = true_sparse_cost(rewritten)
    print(f"\ntrue sparse cost: {after:,.0f} multiply pairs")
    print(f"speedup: {before / max(after, 1):.2f}x")

    # Sanity: the rewrite is semantics-preserving.
    assert (evaluate(root) != evaluate(rewritten)).nnz == 0
    print("\n(rewritten plan verified structurally identical to the original)")


if __name__ == "__main__":
    main()
